//! Encoder families and effort presets.
//!
//! The paper compares three software encoders — libx264 (H.264), libx265
//! (HEVC) and libvpx-vp9 (VP9) — whose essential difference is the *tool
//! set*: newer codecs add larger blocks, richer prediction, and stronger
//! entropy coding, buying compression with computation (Figure 2 of the
//! paper: libvpx-vp9 ≈ libx265 > libx264 in quality-per-bit, at 3–4× the
//! compute). [`CodecFamily`] reproduces that structure mechanistically.
//!
//! Orthogonally, every family exposes an effort ladder ([`Preset`],
//! mirroring x264's ultrafast…veryslow) that widens the heuristic search
//! the paper describes in Section 2.2.

use crate::entropy::EntropyBackend;
use crate::motion::{SearchAlgorithm, SearchParams, SubPelDepth};
use crate::predict::IntraMode;

/// Codec tool-set families, named for the codec generation they model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CodecFamily {
    /// H.264/AVC class: 16×16 superblocks, DC/H/V intra, half-pel motion,
    /// VLC entropy at fast presets and arithmetic at slow ones.
    Avc,
    /// H.265/HEVC class: 32×32 superblocks with split search, planar intra,
    /// quarter-pel motion, arithmetic entropy.
    Hevc,
    /// VP9 class: like HEVC-class with faster-adapting entropy contexts and
    /// more aggressive rate-distortion lambda.
    Vp9,
    /// AV1 class: the next generation the paper anticipates ("a trend that
    /// is expected to continue with the release of the AV1 codec") —
    /// fastest-adapting entropy contexts, widest search, lowest lambda;
    /// best compression, most compute.
    Av1,
}

impl CodecFamily {
    /// All families, oldest first.
    pub const ALL: [CodecFamily; 4] =
        [CodecFamily::Avc, CodecFamily::Hevc, CodecFamily::Vp9, CodecFamily::Av1];

    /// Superblock (largest coding unit) edge length.
    pub fn superblock_size(&self) -> usize {
        match self {
            CodecFamily::Avc => 16,
            CodecFamily::Hevc | CodecFamily::Vp9 | CodecFamily::Av1 => 32,
        }
    }

    /// Intra prediction modes this family may signal.
    pub fn intra_modes(&self) -> &'static [IntraMode] {
        match self {
            CodecFamily::Avc => &[IntraMode::Dc, IntraMode::Horizontal, IntraMode::Vertical],
            CodecFamily::Hevc | CodecFamily::Vp9 | CodecFamily::Av1 => {
                &[IntraMode::Dc, IntraMode::Horizontal, IntraMode::Vertical, IntraMode::Planar]
            }
        }
    }

    /// Deepest sub-pel motion the family supports.
    pub fn max_subpel(&self) -> SubPelDepth {
        match self {
            CodecFamily::Avc => SubPelDepth::Half,
            CodecFamily::Hevc | CodecFamily::Vp9 | CodecFamily::Av1 => SubPelDepth::Quarter,
        }
    }

    /// Whether superblocks may split into quadrant partitions with their
    /// own motion vectors.
    pub fn supports_split(&self) -> bool {
        !matches!(self, CodecFamily::Avc)
    }

    /// Entropy backend at a given preset.
    ///
    /// The AVC-class encoder switches from CAVLC-style VLC to CABAC-style
    /// arithmetic coding at `Medium` and above, like x264's profiles; the
    /// newer families always use arithmetic coding, the VP9 class with
    /// faster context adaptation.
    pub fn entropy_backend(&self, preset: Preset) -> EntropyBackend {
        match self {
            CodecFamily::Avc => {
                if preset >= Preset::Medium {
                    EntropyBackend::Arith { shift: 5 }
                } else {
                    EntropyBackend::Vlc
                }
            }
            CodecFamily::Hevc => EntropyBackend::Arith { shift: 5 },
            CodecFamily::Vp9 => EntropyBackend::Arith { shift: 4 },
            CodecFamily::Av1 => EntropyBackend::Arith { shift: 3 },
        }
    }

    /// Rate-distortion lambda scale; newer families spend decision effort
    /// closer to the true rate cost, modelled as a modestly lower lambda.
    pub fn lambda_scale(&self) -> f64 {
        match self {
            CodecFamily::Avc => 1.0,
            CodecFamily::Hevc => 0.9,
            CodecFamily::Vp9 => 0.85,
            CodecFamily::Av1 => 0.8,
        }
    }

    /// CRF-scale offset on the QP axis. CRF numbers are not comparable
    /// across codecs: like x265 and libvpx against x264, the newer
    /// families' scales sit lower, so at the same nominal CRF they
    /// quantize slightly coarser — trading a fraction of a dB for a
    /// sizeable bitrate saving, which is how their compression advantage
    /// shows up in same-CRF comparisons.
    pub fn crf_qp_offset(&self) -> f64 {
        match self {
            CodecFamily::Avc => 0.0,
            CodecFamily::Hevc | CodecFamily::Vp9 | CodecFamily::Av1 => 1.0,
        }
    }

    /// Extra motion-search effort multiplier: the newer encoders search
    /// wider at the same named preset (one reason they are 3–4× slower).
    pub fn search_effort_scale(&self) -> f64 {
        match self {
            CodecFamily::Avc => 1.0,
            CodecFamily::Hevc => 1.6,
            CodecFamily::Vp9 => 1.8,
            CodecFamily::Av1 => 2.4,
        }
    }
}

impl std::fmt::Display for CodecFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CodecFamily::Avc => "avc",
            CodecFamily::Hevc => "hevc",
            CodecFamily::Vp9 => "vp9",
            CodecFamily::Av1 => "av1",
        };
        f.write_str(name)
    }
}

/// Effort presets, fastest first (x264-style ladder).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Preset {
    /// Minimum effort: small pattern search, no sub-pel, no mode search.
    UltraFast,
    /// Small diamond search with half-pel.
    VeryFast,
    /// Hexagon search, half-pel.
    Fast,
    /// Hexagon search, full sub-pel, SATD refinement, split search.
    Medium,
    /// Wider search, full intra RDO.
    Slow,
    /// Exhaustive full-pel search — the "highest quality setting" used for
    /// the paper's Popular references.
    VerySlow,
}

impl Preset {
    /// All presets, fastest first.
    pub const ALL: [Preset; 6] = [
        Preset::UltraFast,
        Preset::VeryFast,
        Preset::Fast,
        Preset::Medium,
        Preset::Slow,
        Preset::VerySlow,
    ];

    /// Motion search parameters for this preset under `family`'s tool
    /// ceiling. `lambda` is filled in per-frame by the encoder.
    pub fn search_params(&self, family: CodecFamily) -> SearchParams {
        let (algorithm, base_range, subpel, use_satd) = match self {
            Preset::UltraFast => (SearchAlgorithm::Diamond, 8u16, SubPelDepth::None, false),
            Preset::VeryFast => (SearchAlgorithm::Diamond, 12, SubPelDepth::Half, false),
            Preset::Fast => (SearchAlgorithm::Hexagon, 16, SubPelDepth::Half, false),
            Preset::Medium => (SearchAlgorithm::Hexagon, 16, SubPelDepth::Quarter, true),
            Preset::Slow => (SearchAlgorithm::Hexagon, 24, SubPelDepth::Quarter, true),
            Preset::VerySlow => (SearchAlgorithm::Full, 12, SubPelDepth::Quarter, true),
        };
        let range = ((f64::from(base_range) * family.search_effort_scale()).round() as u16).max(4);
        SearchParams {
            algorithm,
            range,
            subpel: subpel.min(family.max_subpel()),
            lambda: 1.0,
            use_satd,
        }
    }

    /// Whether the encoder searches superblock split partitions (in
    /// families that support them).
    pub fn try_split(&self) -> bool {
        *self >= Preset::Medium
    }

    /// Whether all intra modes are evaluated with an RD cost (vs. the
    /// cheap DC/vertical subset).
    pub fn full_intra_search(&self) -> bool {
        *self >= Preset::Slow
    }
}

impl std::fmt::Display for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Preset::UltraFast => "ultrafast",
            Preset::VeryFast => "veryfast",
            Preset::Fast => "fast",
            Preset::Medium => "medium",
            Preset::Slow => "slow",
            Preset::VerySlow => "veryslow",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_ladder_monotone_in_effort() {
        // Each step up may not shrink search range or sub-pel depth
        // (VerySlow's full search narrows the window but examines far more
        // positions, so exempt its range).
        for family in CodecFamily::ALL {
            for pair in Preset::ALL.windows(2) {
                let a = pair[0].search_params(family);
                let b = pair[1].search_params(family);
                assert!(b.subpel >= a.subpel, "{family}: {:?} -> {:?}", pair[0], pair[1]);
                if pair[1] != Preset::VerySlow {
                    assert!(b.range >= a.range, "{family}: {:?} -> {:?}", pair[0], pair[1]);
                }
            }
        }
    }

    #[test]
    fn family_tool_sets_grow_with_generation() {
        assert!(CodecFamily::Avc.superblock_size() < CodecFamily::Hevc.superblock_size());
        assert!(CodecFamily::Avc.intra_modes().len() < CodecFamily::Vp9.intra_modes().len());
        assert!(CodecFamily::Avc.max_subpel() < CodecFamily::Vp9.max_subpel());
        assert!(!CodecFamily::Avc.supports_split());
        assert!(CodecFamily::Hevc.supports_split());
    }

    #[test]
    fn avc_switches_entropy_backend_at_medium() {
        assert_eq!(CodecFamily::Avc.entropy_backend(Preset::Fast), EntropyBackend::Vlc);
        assert_eq!(
            CodecFamily::Avc.entropy_backend(Preset::Medium),
            EntropyBackend::Arith { shift: 5 }
        );
        assert_eq!(
            CodecFamily::Vp9.entropy_backend(Preset::UltraFast),
            EntropyBackend::Arith { shift: 4 }
        );
        assert_eq!(
            CodecFamily::Av1.entropy_backend(Preset::Fast),
            EntropyBackend::Arith { shift: 3 }
        );
    }

    #[test]
    fn avc_subpel_capped_at_half() {
        let p = Preset::VerySlow.search_params(CodecFamily::Avc);
        assert_eq!(p.subpel, SubPelDepth::Half);
        let p = Preset::VerySlow.search_params(CodecFamily::Vp9);
        assert_eq!(p.subpel, SubPelDepth::Quarter);
    }

    #[test]
    fn display_names() {
        assert_eq!(CodecFamily::Vp9.to_string(), "vp9");
        assert_eq!(CodecFamily::Av1.to_string(), "av1");
        assert_eq!(Preset::VerySlow.to_string(), "veryslow");
    }

    #[test]
    fn av1_is_the_widest_searcher() {
        for f in [CodecFamily::Avc, CodecFamily::Hevc, CodecFamily::Vp9] {
            assert!(CodecFamily::Av1.search_effort_scale() > f.search_effort_scale());
            assert!(CodecFamily::Av1.lambda_scale() <= f.lambda_scale());
        }
    }
}
