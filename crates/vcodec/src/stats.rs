//! Encoder instrumentation: kernel work counters and the trace probe.
//!
//! The microarchitectural studies in the paper (Figures 5–8) require
//! observing *what the encoder actually did* — which kernels ran, how much
//! data they touched, and which way its decision branches went. The encoder
//! reports that through two mechanisms:
//!
//! * [`KernelCounters`] — aggregate per-kernel work counts, always
//!   collected (cheap), used for speed/efficiency reporting and the SIMD
//!   analysis;
//! * [`Probe`] — a streaming event sink receiving kernel entries, branch
//!   outcomes, and memory-region accesses as the encode proceeds; the
//!   `varch` crate implements it with cache and branch-predictor
//!   simulators. The default [`NoProbe`] compiles to nothing.

/// The encoder's computational kernels. Each maps to a code region with a
/// characteristic instruction mix (see `varch`'s kernel model): motion
/// search and transforms vectorize well, entropy coding and decision logic
/// are inherently scalar (Section 5.2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Kernel {
    /// Full-pel motion search (SAD loops).
    MotionFullPel,
    /// Sub-pel refinement (interpolation + SAD/SATD).
    MotionSubPel,
    /// Motion compensation of the chosen vector.
    MotionComp,
    /// Intra prediction.
    IntraPred,
    /// Forward transform.
    Fdct,
    /// Inverse transform (reconstruction).
    Idct,
    /// Quantization.
    Quant,
    /// Dequantization.
    Dequant,
    /// Entropy coding (bitstream writing).
    Entropy,
    /// In-loop deblocking filter.
    Deblock,
    /// Mode decision / RDO logic.
    ModeDecision,
    /// Per-frame setup and rate control.
    FrameSetup,
}

impl Kernel {
    /// Every kernel, in a stable order (indexes [`KernelCounters`]).
    pub const ALL: [Kernel; 12] = [
        Kernel::MotionFullPel,
        Kernel::MotionSubPel,
        Kernel::MotionComp,
        Kernel::IntraPred,
        Kernel::Fdct,
        Kernel::Idct,
        Kernel::Quant,
        Kernel::Dequant,
        Kernel::Entropy,
        Kernel::Deblock,
        Kernel::ModeDecision,
        Kernel::FrameSetup,
    ];

    /// Stable index of this kernel in [`Kernel::ALL`].
    pub fn index(&self) -> usize {
        Kernel::ALL.iter().position(|k| k == self).expect("kernel listed in ALL")
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::MotionFullPel => "me_fullpel",
            Kernel::MotionSubPel => "me_subpel",
            Kernel::MotionComp => "mc",
            Kernel::IntraPred => "intra",
            Kernel::Fdct => "fdct",
            Kernel::Idct => "idct",
            Kernel::Quant => "quant",
            Kernel::Dequant => "dequant",
            Kernel::Entropy => "entropy",
            Kernel::Deblock => "deblock",
            Kernel::ModeDecision => "rdo",
            Kernel::FrameSetup => "setup",
        }
    }
}

/// Decision-branch sites the encoder exposes to the probe. Their bias (and
/// therefore predictability) depends on content complexity, which is what
/// drives the paper's branch-MPKI-vs-entropy trend (Figure 5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchSite {
    /// "This superblock is coded intra" (P frames).
    ModeIsIntra,
    /// "This superblock is skipped".
    SkipTaken,
    /// "The split partition won the RD comparison".
    SplitTaken,
    /// "This search step improved the best cost".
    SearchAccept,
    /// "This coefficient block has residual data".
    CoeffCoded,
    /// "This quantized coefficient is nonzero".
    CoeffNonzero,
    /// "The deblock filter fired on this edge".
    DeblockFired,
}

impl BranchSite {
    /// Every site, in a stable order.
    pub const ALL: [BranchSite; 7] = [
        BranchSite::ModeIsIntra,
        BranchSite::SkipTaken,
        BranchSite::SplitTaken,
        BranchSite::SearchAccept,
        BranchSite::CoeffCoded,
        BranchSite::CoeffNonzero,
        BranchSite::DeblockFired,
    ];

    /// Stable index of this site.
    pub fn index(&self) -> usize {
        BranchSite::ALL.iter().position(|s| s == self).expect("site listed in ALL")
    }
}

/// Streaming sink for encoder events. All methods default to no-ops so
/// implementors override only what they need.
pub trait Probe {
    /// A kernel processed `samples` data elements.
    fn kernel(&mut self, kernel: Kernel, samples: u64) {
        let _ = (kernel, samples);
    }

    /// A decision branch at `site` resolved to `taken`.
    fn branch(&mut self, site: BranchSite, taken: bool) {
        let _ = (site, taken);
    }

    /// The encoder read a memory region `[addr, addr + bytes)`.
    fn mem_read(&mut self, addr: u64, bytes: u64) {
        let _ = (addr, bytes);
    }

    /// The encoder wrote a memory region `[addr, addr + bytes)`.
    fn mem_write(&mut self, addr: u64, bytes: u64) {
        let _ = (addr, bytes);
    }
}

/// The do-nothing probe used when no microarchitectural observation is
/// wanted.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProbe;

impl Probe for NoProbe {}

/// Aggregate per-kernel work counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    invocations: [u64; Kernel::ALL.len()],
    samples: [u64; Kernel::ALL.len()],
}

impl KernelCounters {
    /// Creates zeroed counters.
    pub fn new() -> KernelCounters {
        KernelCounters::default()
    }

    /// Records one invocation of `kernel` over `samples` data elements.
    pub fn record(&mut self, kernel: Kernel, samples: u64) {
        self.invocations[kernel.index()] += 1;
        self.samples[kernel.index()] += samples;
    }

    /// Invocation count for a kernel.
    pub fn invocations(&self, kernel: Kernel) -> u64 {
        self.invocations[kernel.index()]
    }

    /// Total data elements processed by a kernel.
    pub fn samples(&self, kernel: Kernel) -> u64 {
        self.samples[kernel.index()]
    }

    /// Total samples across all kernels (a machine-independent work
    /// measure).
    pub fn total_samples(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &KernelCounters) {
        for i in 0..Kernel::ALL.len() {
            self.invocations[i] += other.invocations[i];
            self.samples[i] += other.samples[i];
        }
    }
}

/// Everything the encoder reports about one encode.
#[derive(Clone, Debug, Default)]
pub struct EncodeStats {
    /// Wall-clock seconds spent encoding (all passes).
    pub encode_seconds: f64,
    /// Bytes in the produced bitstream.
    pub bitstream_bytes: u64,
    /// Frames encoded.
    pub frames: u32,
    /// Superblocks coded as intra.
    pub sb_intra: u64,
    /// Superblocks coded as inter (including split).
    pub sb_inter: u64,
    /// Superblocks skipped.
    pub sb_skip: u64,
    /// Superblocks coded with split partitions.
    pub sb_split: u64,
    /// Average QP over all frames.
    pub avg_qp: f64,
    /// Per-kernel work counters.
    pub kernels: KernelCounters,
}

impl EncodeStats {
    /// Pixels per second of encoding throughput — the paper's speed metric
    /// (Section 2.3) — given the clip's total pixel count.
    ///
    /// # Panics
    ///
    /// Panics if no time was recorded.
    pub fn pixels_per_second(&self, total_pixels: u64) -> f64 {
        assert!(self.encode_seconds > 0.0, "encode time was not recorded");
        total_pixels as f64 / self.encode_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_indices_are_dense_and_stable() {
        for (i, k) in Kernel::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        for (i, s) in BranchSite::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = KernelCounters::new();
        a.record(Kernel::Fdct, 64);
        a.record(Kernel::Fdct, 64);
        a.record(Kernel::Entropy, 10);
        assert_eq!(a.invocations(Kernel::Fdct), 2);
        assert_eq!(a.samples(Kernel::Fdct), 128);
        let mut b = KernelCounters::new();
        b.record(Kernel::Fdct, 8);
        b.merge(&a);
        assert_eq!(b.samples(Kernel::Fdct), 136);
        assert_eq!(b.total_samples(), 146);
    }

    #[test]
    fn noprobe_accepts_everything() {
        let mut p = NoProbe;
        p.kernel(Kernel::Quant, 100);
        p.branch(BranchSite::SkipTaken, true);
        p.mem_read(0x1000, 64);
        p.mem_write(0x2000, 64);
    }

    #[test]
    fn pixels_per_second() {
        let stats = EncodeStats { encode_seconds: 2.0, ..EncodeStats::default() };
        assert_eq!(stats.pixels_per_second(4_000_000), 2_000_000.0);
    }

    #[test]
    fn kernel_names_unique() {
        let mut names: Vec<&str> = Kernel::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Kernel::ALL.len());
    }
}
