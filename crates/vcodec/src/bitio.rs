//! Bit-granular I/O over byte buffers.
//!
//! The codec's bitstream layer: a most-significant-bit-first writer/reader
//! pair used by the Exp-Golomb coder and the VLC entropy backend, and as the
//! byte transport underneath the arithmetic coder.

/// Error type for bitstream reads that run past the end of the buffer or
/// encounter malformed data.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReadBitsError;

impl std::fmt::Display for ReadBitsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bitstream exhausted or malformed")
    }
}

impl std::error::Error for ReadBitsError {}

/// Writes bits MSB-first into a growable byte buffer.
///
/// ```
/// use vcodec::bitio::{BitReader, BitWriter};
/// let mut w = BitWriter::new();
/// w.put_bit(true);
/// w.put_bits(0b1011, 4);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.get_bit().unwrap(), true);
/// assert_eq!(r.get_bits(4).unwrap(), 0b1011);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits pending in `acc`, 0..8.
    pending: u32,
    acc: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends one bit.
    pub fn put_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | u8::from(bit);
        self.pending += 1;
        if self.pending == 8 {
            self.bytes.push(self.acc);
            self.acc = 0;
            self.pending = 0;
        }
    }

    /// Appends the `count` low-order bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64` or `value` has bits above `count`.
    pub fn put_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        if count < 64 {
            assert!(value < (1u64 << count), "value {value} does not fit in {count} bits");
        }
        for i in (0..count).rev() {
            self.put_bit((value >> i) & 1 == 1);
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 + u64::from(self.pending)
    }

    /// Pads with zero bits to a byte boundary and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.pending > 0 {
            self.acc <<= 8 - self.pending;
            self.bytes.push(self.acc);
        }
        self.bytes
    }

    /// Pads to a byte boundary in place (e.g. between stream sections).
    pub fn byte_align(&mut self) {
        while self.pending != 0 {
            self.put_bit(false);
        }
    }

    /// Appends whole bytes; the writer must be byte-aligned.
    ///
    /// # Panics
    ///
    /// Panics if the writer is not at a byte boundary.
    pub fn put_bytes(&mut self, data: &[u8]) {
        assert_eq!(self.pending, 0, "put_bytes requires byte alignment");
        self.bytes.extend_from_slice(data);
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit position.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] at end of stream.
    pub fn get_bit(&mut self) -> Result<bool, ReadBitsError> {
        let byte = self.bytes.get((self.pos / 8) as usize).ok_or(ReadBitsError)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit == 1)
    }

    /// Reads `count` bits MSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] at end of stream.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn get_bits(&mut self, count: u32) -> Result<u64, ReadBitsError> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | u64::from(self.get_bit()?);
        }
        Ok(v)
    }

    /// Current bit position from the start of the buffer.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Skips to the next byte boundary.
    pub fn byte_align(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Reads `n` whole bytes; the reader must be byte-aligned.
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] if fewer than `n` bytes remain.
    ///
    /// # Panics
    ///
    /// Panics if the reader is not at a byte boundary.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], ReadBitsError> {
        assert_eq!(self.pos % 8, 0, "get_bytes requires byte alignment");
        let start = (self.pos / 8) as usize;
        let end = start.checked_add(n).ok_or(ReadBitsError)?;
        if end > self.bytes.len() {
            return Err(ReadBitsError);
        }
        self.pos += n as u64 * 8;
        Ok(&self.bytes[start..end])
    }

    /// Remaining bits in the buffer.
    pub fn remaining_bits(&self) -> u64 {
        (self.bytes.len() as u64 * 8).saturating_sub(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let pattern = [true, false, true, true, false, false, true, false, true];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.put_bit(b);
        }
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.get_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0x3FF, 10);
        w.put_bits(0, 3);
        w.put_bits(0xDEADBEEF, 32);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(10).unwrap(), 0x3FF);
        assert_eq!(r.get_bits(3).unwrap(), 0);
        assert_eq!(r.get_bits(32).unwrap(), 0xDEADBEEF);
    }

    #[test]
    fn bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put_bits(1, 1);
        w.put_bits(0b101, 3);
        assert_eq!(w.bit_len(), 4);
    }

    #[test]
    fn eof_is_an_error() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert!(r.get_bits(8).is_ok());
        assert!(r.get_bit().is_err());
    }

    #[test]
    fn byte_align_and_bytes() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.byte_align();
        w.put_bytes(&[0xAB, 0xCD]);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3).unwrap(), 0b101);
        r.byte_align();
        assert_eq!(r.get_bytes(2).unwrap(), &[0xAB, 0xCD]);
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_rejected() {
        let mut w = BitWriter::new();
        w.put_bits(16, 4);
    }

    #[test]
    fn get_bytes_eof() {
        let bytes = [1u8, 2];
        let mut r = BitReader::new(&bytes);
        assert!(r.get_bytes(3).is_err());
        assert_eq!(r.get_bytes(2).unwrap(), &[1, 2]);
    }
}
