//! Coefficient quantization — the only lossy step of the codec.
//!
//! Quantization divides each transform coefficient by a step size derived
//! from the quantizer parameter (QP), zeroing the high-frequency components
//! the viewer is least likely to notice (Section 2.1 of the paper). The QP
//! scale follows H.264: the step doubles every 6 QP, spanning QP 0..=51.

/// Inclusive QP range.
pub const QP_MIN: u8 = 0;
/// Inclusive QP range.
pub const QP_MAX: u8 = 51;

/// Quantization step size for a QP, H.264-style: `0.625 · 2^(qp/6)`.
///
/// ```
/// use vcodec::quant::qstep;
/// assert!((qstep(0) - 0.625).abs() < 1e-9);
/// // Six QP doubles the step.
/// assert!((qstep(30) / qstep(24) - 2.0).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if `qp > 51`.
pub fn qstep(qp: u8) -> f64 {
    assert!(qp <= QP_MAX, "QP must be 0..=51, got {qp}");
    0.625 * (f64::from(qp) / 6.0).exp2()
}

/// Deadzone bias applied during quantization. Intra blocks use a plain
/// round-to-nearest; inter residuals use a wider deadzone that discards
/// more marginal coefficients, matching x264's default behaviour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Deadzone {
    /// Round to nearest (bias 1/2) — intra blocks.
    Intra,
    /// Wider deadzone (bias ≈ 1/3) — inter residuals.
    Inter,
}

impl Deadzone {
    fn bias(&self) -> f64 {
        match self {
            Deadzone::Intra => 0.5,
            Deadzone::Inter => 1.0 / 3.0,
        }
    }
}

/// Quantizes transform coefficients in place-free style: returns quantized
/// levels.
///
/// # Panics
///
/// Panics if `qp > 51`.
pub fn quantize(coeffs: &[i32], qp: u8, deadzone: Deadzone) -> Vec<i32> {
    let step = qstep(qp);
    let bias = deadzone.bias();
    coeffs
        .iter()
        .map(|&c| {
            let level = (f64::from(c.abs()) / step + bias).floor() as i32;
            if c < 0 {
                -level
            } else {
                level
            }
        })
        .collect()
}

/// Reconstructs coefficients from quantized levels (the decoder's half of
/// the quantizer).
///
/// # Panics
///
/// Panics if `qp > 51`.
pub fn dequantize(levels: &[i32], qp: u8) -> Vec<i32> {
    let step = qstep(qp);
    levels.iter().map(|&l| (f64::from(l) * step).round() as i32).collect()
}

/// Maps a constant-rate-factor (CRF) quality target onto a base QP.
///
/// Like x264, CRF values live on the QP scale; CRF 18 is "visually
/// lossless", CRF 23 the default (the paper, Section 4.1, uses CRF 18 to
/// measure entropy). The returned QP is simply the clamped CRF — the rate
/// controller then modulates per-frame QP around it.
pub fn crf_to_qp(crf: f64) -> u8 {
    crf.round().clamp(f64::from(QP_MIN), f64::from(QP_MAX)) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qstep_monotonically_increases() {
        let mut prev = 0.0;
        for qp in QP_MIN..=QP_MAX {
            let s = qstep(qp);
            assert!(s > prev, "qstep({qp}) = {s} not > {prev}");
            prev = s;
        }
    }

    #[test]
    fn qstep_doubles_every_six() {
        for qp in 0..=(QP_MAX - 6) {
            let ratio = qstep(qp + 6) / qstep(qp);
            assert!((ratio - 2.0).abs() < 1e-9, "qp {qp}: ratio {ratio}");
        }
    }

    #[test]
    fn quantize_dequantize_error_bounded_by_step() {
        let coeffs: Vec<i32> = (-100..100).map(|i| i * 13).collect();
        for qp in [10u8, 26, 40] {
            let step = qstep(qp);
            let levels = quantize(&coeffs, qp, Deadzone::Intra);
            let rec = dequantize(&levels, qp);
            for (&c, &r) in coeffs.iter().zip(&rec) {
                assert!(
                    (f64::from(c) - f64::from(r)).abs() <= step / 2.0 + 1.0,
                    "qp {qp}: {c} -> {r} (step {step})"
                );
            }
        }
    }

    #[test]
    fn higher_qp_zeroes_more_coefficients() {
        let coeffs: Vec<i32> = (0..64).map(|i| i - 32).collect();
        let zeros =
            |qp: u8| quantize(&coeffs, qp, Deadzone::Inter).iter().filter(|&&l| l == 0).count();
        assert!(zeros(40) > zeros(20));
        assert!(zeros(20) >= zeros(5));
    }

    #[test]
    fn inter_deadzone_is_wider() {
        // A coefficient just below 0.5 steps quantizes to 0 only with the
        // inter deadzone.
        let qp = 30u8;
        let c = (qstep(qp) * 0.45) as i32;
        assert_eq!(quantize(&[c], qp, Deadzone::Intra)[0], 0);
        let c2 = (qstep(qp) * 0.55) as i32;
        assert_eq!(quantize(&[c2], qp, Deadzone::Intra)[0], 1);
        assert_eq!(quantize(&[c2], qp, Deadzone::Inter)[0], 0);
    }

    #[test]
    fn quantize_preserves_sign() {
        let coeffs = [-500, -1, 0, 1, 500];
        let levels = quantize(&coeffs, 20, Deadzone::Intra);
        for (&c, &l) in coeffs.iter().zip(&levels) {
            // A nonzero level always carries the coefficient's sign; tiny
            // coefficients may legitimately quantize to zero.
            assert!(l == 0 || ((c < 0) == (l < 0)), "{c} -> {l}");
        }
        assert!(levels[0] < 0 && levels[4] > 0);
    }

    #[test]
    fn crf_mapping_clamps() {
        assert_eq!(crf_to_qp(18.0), 18);
        assert_eq!(crf_to_qp(-3.0), 0);
        assert_eq!(crf_to_qp(99.0), 51);
    }

    #[test]
    #[should_panic(expected = "QP must be")]
    fn qp_out_of_range_panics() {
        let _ = qstep(52);
    }
}
