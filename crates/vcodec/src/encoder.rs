//! The video encoder.
//!
//! A block-transform hybrid encoder following the template of Section 2.1
//! of the paper: frames are decomposed into superblocks; each is predicted
//! (intra from reconstructed neighbours, or inter via motion estimation
//! against the previous reconstructed frame); the residual is transformed,
//! quantized and entropy-coded; the quantized residual is reconstructed
//! in-loop so encoder and decoder reference identical pixels; a deblocking
//! filter smooths block boundaries.
//!
//! Speed is *measured*, not modelled: effort levels do genuinely different
//! amounts of work (search positions, RDO candidates, entropy method), so
//! the paper's speed/quality/bitrate trade-offs emerge from real
//! computation.

use std::collections::VecDeque;
use std::time::Instant;

use crate::bitio::BitWriter;
use crate::deblock::deblock_plane;
use crate::entropy::{CtxClass, EntropyEncoder};
use crate::family::{CodecFamily, Preset};
use crate::motion::{
    median_predictor, motion_compensate, search, MotionVector, SearchParams, SearchStats,
};
use crate::predict::{predict_intra, IntraMode};
use crate::quant::{dequantize, quantize, Deadzone};
use crate::rc::{FirstPassLog, FrameKind, RateControl, RateController};
use crate::stats::{BranchSite, EncodeStats, Kernel, KernelCounters, NoProbe, Probe};
use crate::transform::{fdct, idct, TransformSize};
use vframe::block::{sad, satd, Block};
use vframe::metrics::PsnrAccumulator;
use vframe::source::{FrameSource, VideoSource};
use vframe::{Frame, Plane, Video};

/// Magic bytes opening every bitstream.
pub const MAGIC: &[u8; 4] = b"VBCR";
/// Bitstream format version.
pub const VERSION: u8 = 3;

/// Synthetic address-space bases used for probe memory events (the encoder
/// double-buffers reconstruction the way a real one reuses frame buffers).
const ADDR_CUR: u64 = 0x1000_0000;
const ADDR_REF_A: u64 = 0x2000_0000;
const ADDR_REF_B: u64 = 0x3000_0000;
/// Plane offsets within a frame buffer region.
const ADDR_CHROMA_U: u64 = 0x0080_0000;
const ADDR_CHROMA_V: u64 = 0x00c0_0000;

/// Full encoder configuration.
#[derive(Clone, Copy, Debug)]
pub struct EncoderConfig {
    /// Codec tool-set family.
    pub family: CodecFamily,
    /// Effort preset.
    pub preset: Preset,
    /// Rate-control mode.
    pub rate: RateControl,
    /// Keyframe interval in frames.
    pub gop: u32,
    /// In-loop deblocking filter (on by default; the off position exists
    /// for ablation studies of this design choice).
    pub in_loop_deblock: bool,
    /// Entropy backend override for ablations; `None` uses the family's
    /// preset-dependent default.
    pub entropy_override: Option<crate::entropy::EntropyBackend>,
    /// Insert one bidirectional (B) frame between consecutive reference
    /// frames. B frames predict from both temporal directions and are not
    /// themselves used as references.
    pub bframes: bool,
}

impl EncoderConfig {
    /// Creates a configuration with the default GOP of 60 frames.
    pub fn new(family: CodecFamily, preset: Preset, rate: RateControl) -> EncoderConfig {
        EncoderConfig {
            family,
            preset,
            rate,
            gop: 60,
            in_loop_deblock: true,
            entropy_override: None,
            bframes: false,
        }
    }

    /// Overrides the keyframe interval.
    ///
    /// # Panics
    ///
    /// Panics if `gop` is zero.
    pub fn with_gop(mut self, gop: u32) -> EncoderConfig {
        assert!(gop > 0, "GOP must be non-zero");
        self.gop = gop;
        self
    }

    /// Disables the in-loop deblocking filter (ablation knob).
    pub fn without_deblock(mut self) -> EncoderConfig {
        self.in_loop_deblock = false;
        self
    }

    /// Forces an entropy backend regardless of family/preset (ablation
    /// knob; the choice is recorded in the stream header, so decoding
    /// works unchanged).
    pub fn with_entropy_backend(
        mut self,
        backend: crate::entropy::EntropyBackend,
    ) -> EncoderConfig {
        self.entropy_override = Some(backend);
        self
    }

    /// The entropy backend this configuration codes with.
    pub fn entropy_backend(&self) -> crate::entropy::EntropyBackend {
        self.entropy_override.unwrap_or_else(|| self.family.entropy_backend(self.preset))
    }

    /// Enables B frames (IBPBP… structure).
    pub fn with_bframes(mut self) -> EncoderConfig {
        self.bframes = true;
        self
    }
}

/// Coded frame types.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FrameType {
    /// Intra-only key frame.
    Intra,
    /// Forward-predicted frame (a reference).
    Predicted,
    /// Bidirectionally predicted frame (not a reference).
    Bidirectional,
}

impl FrameType {
    /// Stable bitstream code.
    pub fn to_code(self) -> u8 {
        match self {
            FrameType::Predicted => 0,
            FrameType::Intra => 1,
            FrameType::Bidirectional => 2,
        }
    }

    /// Inverse of [`FrameType::to_code`].
    pub fn from_code(code: u8) -> Option<FrameType> {
        match code {
            0 => Some(FrameType::Predicted),
            1 => Some(FrameType::Intra),
            2 => Some(FrameType::Bidirectional),
            _ => None,
        }
    }
}

/// The coding (bitstream) order for a clip: pairs of `(display_index,
/// frame_type)`. Without B frames this is display order; with them, each
/// B is coded after the reference frame that follows it in display order
/// (the decoder needs both its references first).
pub fn coding_order(frames: usize, gop: u32, bframes: bool) -> Vec<(usize, FrameType)> {
    assert!(gop > 0, "GOP must be non-zero");
    let gop = gop as usize;
    let mut order = Vec::with_capacity(frames);
    if !bframes {
        for d in 0..frames {
            let t = if d % gop == 0 { FrameType::Intra } else { FrameType::Predicted };
            order.push((d, t));
        }
        return order;
    }
    let mut d = 0usize;
    while d < frames {
        if d.is_multiple_of(gop) {
            order.push((d, FrameType::Intra));
            d += 1;
        } else if d + 1 < frames && !(d + 1).is_multiple_of(gop) {
            // P first (it is the B's backward reference), then the B.
            order.push((d + 1, FrameType::Predicted));
            order.push((d, FrameType::Bidirectional));
            d += 2;
        } else {
            order.push((d, FrameType::Predicted));
            d += 1;
        }
    }
    order
}

/// Everything an encode produces.
#[derive(Clone, Debug)]
pub struct EncodeOutput {
    /// The complete bitstream (header + frames).
    pub bytes: Vec<u8>,
    /// Work and timing statistics (all passes).
    pub stats: EncodeStats,
    /// The encoder-side reconstruction; bit-identical to what
    /// [`crate::decoder::decode`] produces, and the video whose PSNR
    /// against the source defines quality.
    pub recon: Video,
    /// First-pass complexity log when two-pass rate control ran.
    pub first_pass: Option<FirstPassLog>,
}

impl EncodeOutput {
    /// Bitrate of the produced stream in bits per second.
    pub fn bitrate_bps(&self, duration_secs: f64) -> f64 {
        (self.bytes.len() as f64 * 8.0) / duration_secs
    }
}

/// Why an encode request was rejected before any coding ran.
///
/// [`encode`] keeps its infallible signature for well-formed inputs (the
/// historical call sites all construct valid requests statically);
/// [`try_encode`] is the checked entry point the `vbench` engine layer
/// routes through, where requests arrive from CLIs and experiment
/// configurations at run time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// The source clip has no frames.
    EmptySource,
    /// A bitrate-targeting mode was asked to hit zero bits per second.
    ZeroBitrate,
    /// A streaming encode was given a resident-frame window smaller than
    /// the configuration's reference/reorder structure needs (see
    /// [`required_window`]).
    WindowTooSmall {
        /// The smallest window this configuration fits in.
        required: usize,
        /// The window that was requested.
        window: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::EmptySource => f.write_str("source clip has no frames"),
            EncodeError::ZeroBitrate => f.write_str("bitrate target must be non-zero"),
            EncodeError::WindowTooSmall { required, window } => {
                write!(f, "window of {window} frames below the {required} this config needs")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Encodes `video` with `config`, without microarchitectural probing.
pub fn encode(video: &Video, config: &EncoderConfig) -> EncodeOutput {
    encode_with_probe(video, config, &mut NoProbe)
}

/// Checked variant of [`encode`]: validates the request and returns a
/// typed [`EncodeError`] instead of panicking deeper in the pipeline.
pub fn try_encode(video: &Video, config: &EncoderConfig) -> Result<EncodeOutput, EncodeError> {
    if video.is_empty() {
        return Err(EncodeError::EmptySource);
    }
    if config.rate.target_bps() == Some(0) {
        return Err(EncodeError::ZeroBitrate);
    }
    Ok(encode(video, config))
}

/// The smallest resident-frame window a streaming encode with `config`
/// fits in, counting every frame the pipeline holds at once:
///
/// * the display-order pull buffer — 2 frames with B frames (a B is coded
///   after the P that follows it in display order, so its source frame
///   waits one slot), 1 without;
/// * the retained reference reconstructions — current and previous
///   reference with B frames (a B predicts from both), current only
///   without;
/// * the one reconstruction in flight while it is scored and filed.
///
/// GOP length moves keyframes but never widens the reference window, so
/// it does not appear in the bound.
pub fn required_window(config: &EncoderConfig) -> usize {
    if config.bframes {
        5
    } else {
        3
    }
}

/// Everything a bounded-memory streaming encode produces.
///
/// Unlike [`EncodeOutput`] there is no reconstruction clip — recons are
/// dropped the moment they leave the reference window — so quality is
/// reported directly: accumulated per frame during the pass,
/// bit-identical to `psnr_video` over the materialized source and
/// reconstruction (pinned by the workspace's stream-equivalence tests).
#[derive(Clone, Debug)]
pub struct StreamEncodeOutput {
    /// The complete bitstream (header + frames); byte-identical to what
    /// [`encode`] produces for the same content and configuration.
    pub bytes: Vec<u8>,
    /// Work and timing statistics (all passes). `encode_seconds` excludes
    /// time spent waiting on the source (pull wait is the producer's cost,
    /// not the encoder's).
    pub stats: EncodeStats,
    /// Average YCbCr PSNR of the reconstruction against the source, in dB.
    pub quality_db: f64,
    /// The most frames (source + reconstruction) simultaneously resident
    /// at any point across all passes; at most [`required_window`].
    pub peak_resident_frames: usize,
    /// First-pass complexity log when two-pass rate control ran.
    pub first_pass: Option<FirstPassLog>,
}

/// Encodes a [`FrameSource`] with bounded memory: frames are pulled in
/// display order as the coding order needs them, reconstructions are
/// dropped once no longer referenceable, and quality accumulates per
/// frame. The bitstream is byte-identical to [`encode`] over the
/// materialized clip.
///
/// Two-pass rate control replays the source (analysis pass, then
/// [`FrameSource::reset`], then the main pass), exactly mirroring the
/// in-memory path; the peak residency covers both passes.
///
/// `window` is an optional ceiling on resident frames: it never changes
/// the bitstream (the pipeline always runs at its structural minimum,
/// [`required_window`]) but requests below that minimum are rejected.
///
/// # Errors
///
/// [`EncodeError::EmptySource`], [`EncodeError::ZeroBitrate`], or
/// [`EncodeError::WindowTooSmall`].
pub fn encode_stream(
    source: &mut dyn FrameSource,
    config: &EncoderConfig,
    window: Option<usize>,
) -> Result<StreamEncodeOutput, EncodeError> {
    if source.is_empty() {
        return Err(EncodeError::EmptySource);
    }
    if config.rate.target_bps() == Some(0) {
        return Err(EncodeError::ZeroBitrate);
    }
    let required = required_window(config);
    if let Some(w) = window {
        if w < required {
            return Err(EncodeError::WindowTooSmall { required, window: w });
        }
    }

    let start = Instant::now();
    let mut total_kernels = KernelCounters::new();
    let frames_total = source.len();
    let mut residency = Residency::default();
    let mut pull_wait_secs = 0.0f64;
    let mut psnr = PsnrAccumulator::new(frames_total);

    let (mut rc, first_pass) = match config.rate {
        RateControl::ConstQuality { crf } => {
            (RateController::const_quality(crf + config.family.crf_qp_offset()), None)
        }
        RateControl::Bitrate { bps } => {
            (RateController::single_pass(bps, source.fps(), source.resolution().pixels()), None)
        }
        RateControl::TwoPassBitrate { bps } => {
            // Analysis pass: fast preset, fixed quality, no probe — and no
            // PSNR, matching the in-memory path where only the main pass's
            // reconstruction defines quality.
            let analysis_cfg = EncoderConfig {
                preset: Preset::VeryFast,
                rate: RateControl::ConstQuality { crf: 30.0 },
                ..*config
            };
            let mut analysis_rc = RateController::const_quality(30.0);
            let mut mode = PassMode::Bounded {
                psnr: None,
                residency: &mut residency,
                pull_wait_secs: &mut pull_wait_secs,
            };
            let pass1 =
                encode_pass_core(source, &analysis_cfg, &mut analysis_rc, &mut NoProbe, &mut mode);
            total_kernels.merge(&pass1.kernels);
            let log = FirstPassLog { analysis_qp: 30, frame_bits: pass1.frame_bits };
            source.reset();
            (RateController::two_pass(bps, source.fps(), &log), Some(log))
        }
    };

    let pass = {
        let mut mode = PassMode::Bounded {
            psnr: Some(&mut psnr),
            residency: &mut residency,
            pull_wait_secs: &mut pull_wait_secs,
        };
        encode_pass_core(source, config, &mut rc, &mut NoProbe, &mut mode)
    };
    total_kernels.merge(&pass.kernels);

    let peak = residency.peak;
    assert!(peak <= required, "residency {peak} exceeded the structural window {required}");
    if vtrace::enabled() {
        vtrace::gauge("encode.peak_resident_frames", peak as f64);
    }
    let stats = EncodeStats {
        encode_seconds: (start.elapsed().as_secs_f64() - pull_wait_secs).max(1e-9),
        bitstream_bytes: pass.bytes.len() as u64,
        frames: frames_total as u32,
        sb_intra: pass.sb_intra,
        sb_inter: pass.sb_inter,
        sb_skip: pass.sb_skip,
        sb_split: pass.sb_split,
        avg_qp: pass.qp_sum / frames_total as f64,
        kernels: total_kernels,
    };
    Ok(StreamEncodeOutput {
        bytes: pass.bytes,
        stats,
        quality_db: psnr.finish(),
        peak_resident_frames: peak,
        first_pass,
    })
}

/// Encodes `video` with `config`, streaming trace events into `probe`.
///
/// Two-pass rate control runs the analysis pass first (at [`Preset::VeryFast`]
/// with a fixed analysis QP, like production pipelines); its time and work
/// are included in the returned statistics, and its log is returned.
pub fn encode_with_probe(
    video: &Video,
    config: &EncoderConfig,
    probe: &mut dyn Probe,
) -> EncodeOutput {
    let start = Instant::now();
    let mut total_kernels = KernelCounters::new();

    let (mut rc, first_pass) = match config.rate {
        RateControl::ConstQuality { crf } => {
            (RateController::const_quality(crf + config.family.crf_qp_offset()), None)
        }
        RateControl::Bitrate { bps } => {
            (RateController::single_pass(bps, video.fps(), video.resolution().pixels()), None)
        }
        RateControl::TwoPassBitrate { bps } => {
            // Analysis pass: fast preset, fixed quality, no probe.
            let analysis_cfg = EncoderConfig {
                preset: Preset::VeryFast,
                rate: RateControl::ConstQuality { crf: 30.0 },
                ..*config
            };
            let mut analysis_rc = RateController::const_quality(30.0);
            let pass1 = encode_pass(video, &analysis_cfg, &mut analysis_rc, &mut NoProbe);
            total_kernels.merge(&pass1.kernels);
            let log = FirstPassLog { analysis_qp: 30, frame_bits: pass1.frame_bits };
            (RateController::two_pass(bps, video.fps(), &log), Some(log))
        }
    };

    let pass = encode_pass(video, config, &mut rc, probe);
    total_kernels.merge(&pass.kernels);

    let stats = EncodeStats {
        encode_seconds: start.elapsed().as_secs_f64().max(1e-9),
        bitstream_bytes: pass.bytes.len() as u64,
        frames: video.len() as u32,
        sb_intra: pass.sb_intra,
        sb_inter: pass.sb_inter,
        sb_skip: pass.sb_skip,
        sb_split: pass.sb_split,
        avg_qp: pass.qp_sum / video.len() as f64,
        kernels: total_kernels,
    };
    EncodeOutput {
        bytes: pass.bytes,
        stats,
        recon: Video::new(pass.recon, video.fps()),
        first_pass,
    }
}

/// Result of one encoding pass.
struct PassResult {
    bytes: Vec<u8>,
    recon: Vec<Frame>,
    frame_bits: Vec<u64>,
    kernels: KernelCounters,
    sb_intra: u64,
    sb_inter: u64,
    sb_skip: u64,
    sb_split: u64,
    qp_sum: f64,
}

/// Resident-frame accounting for the streaming path: every source frame
/// and reconstruction the pipeline owns counts one, from pull/creation to
/// drop.
#[derive(Clone, Copy, Default, Debug)]
struct Residency {
    current: usize,
    peak: usize,
}

impl Residency {
    fn add(&mut self, n: usize) {
        self.current += n;
        self.peak = self.peak.max(self.current);
    }

    fn sub(&mut self, n: usize) {
        self.current -= n;
    }
}

/// What a pass does with reconstructions. Both modes run the identical
/// coding loop — only frame retention differs — which is what makes the
/// streaming bitstream byte-identical to the in-memory one by
/// construction.
enum PassMode<'a> {
    /// Keep every reconstruction (the in-memory path's
    /// [`EncodeOutput::recon`]).
    Retain,
    /// Bounded memory: drop reconstructions once no longer referenceable,
    /// bank per-frame PSNR into `psnr` (when scoring), and account every
    /// resident frame in `residency`.
    Bounded {
        psnr: Option<&'a mut PsnrAccumulator>,
        residency: &'a mut Residency,
        pull_wait_secs: &'a mut f64,
    },
}

/// The in-memory pass: a [`VideoSource`] pulled through the shared
/// streaming core with full reconstruction retention.
fn encode_pass(
    video: &Video,
    config: &EncoderConfig,
    rc: &mut RateController,
    probe: &mut dyn Probe,
) -> PassResult {
    let mut source = VideoSource::new(video);
    encode_pass_core(&mut source, config, rc, probe, &mut PassMode::Retain)
}

/// Looks up a reference reconstruction in whichever store this pass keeps.
fn ref_frame<'f>(
    retained: &'f [Option<Frame>],
    window: &'f [(usize, Frame)],
    i: usize,
) -> &'f Frame {
    retained
        .get(i)
        .and_then(Option::as_ref)
        .or_else(|| window.iter().find(|(d, _)| *d == i).map(|(_, f)| f))
        .expect("reference frame resident")
}

/// One encoding pass over a [`FrameSource`]: frames are pulled in display
/// order exactly as far ahead as the coding order requires.
fn encode_pass_core(
    source: &mut dyn FrameSource,
    config: &EncoderConfig,
    rc: &mut RateController,
    probe: &mut dyn Probe,
    mode: &mut PassMode<'_>,
) -> PassResult {
    let res = source.resolution();
    let fps = source.fps();
    let total = source.len();
    let backend = config.entropy_backend();

    // Container header.
    let mut container = BitWriter::new();
    container.put_bytes(MAGIC);
    container.put_bits(u64::from(VERSION), 8);
    let family_id = match config.family {
        CodecFamily::Avc => 0u64,
        CodecFamily::Hevc => 1,
        CodecFamily::Vp9 => 2,
        CodecFamily::Av1 => 3,
    };
    container.put_bits(family_id, 8);
    let backend_id = match backend {
        crate::entropy::EntropyBackend::Vlc => 0u64,
        crate::entropy::EntropyBackend::Arith { shift } => u64::from(shift),
    };
    container.put_bits(backend_id, 8);
    container.put_bits(u64::from(res.width()), 16);
    container.put_bits(u64::from(res.height()), 16);
    container.put_bits((fps * 1000.0).round() as u64, 32);
    container.put_bits(total as u64, 32);
    container.put_bits(u64::from(config.gop), 16);
    // Flags byte: bit 0 = in-loop deblocking enabled.
    container.put_bits(u64::from(config.in_loop_deblock), 8);

    let mut state = FrameEncoder::new(config, res.width() as usize, res.height() as usize);
    // Retain mode keeps every reconstruction here; bounded mode keeps at
    // most the two most recent reference recons in `ref_window`.
    let mut retained: Vec<Option<Frame>> =
        if matches!(mode, PassMode::Retain) { vec![None; total] } else { Vec::new() };
    let mut ref_window: Vec<(usize, Frame)> = Vec::new();
    // Source frames pulled but not yet coded; depth is bounded by the
    // coding-order reorder distance (2 with B frames, 1 without).
    let mut pending: VecDeque<(usize, Frame)> = VecDeque::new();
    let mut next_pull = 0usize;
    let mut frame_bits = Vec::with_capacity(total);
    let mut qp_sum = 0.0;

    // Coding order; display indexes of the two most recent reference
    // frames (a B frame predicts forward from `prev_ref` and backward
    // from `cur_ref`).
    let order = coding_order(total, config.gop, config.bframes);
    let mut prev_ref: Option<usize> = None;
    let mut cur_ref: Option<usize> = None;
    let mut last_ref_qp = 26u8;

    for (coding_idx, &(display, ftype)) in order.iter().enumerate() {
        // Per-frame telemetry is sampled only under verbose tracing; the
        // span stays open across the frame so the stage children below
        // parent to it.
        let mut frame_span = vtrace::verbose().then(|| vtrace::span("vcodec.frame"));
        let stages_before = state.stages.unwrap_or_default();
        // Pull display-order frames until `display` is available.
        while next_pull <= display {
            let t0 = Instant::now();
            let f = source.next_frame().expect("source ended before its promised length");
            let waited = t0.elapsed().as_secs_f64();
            if let PassMode::Bounded { residency, pull_wait_secs, .. } = mode {
                **pull_wait_secs += waited;
                residency.add(1);
                if vtrace::enabled() {
                    vtrace::histogram("frame.pull_wait_us", (waited * 1e6) as u64);
                }
            }
            pending.push_back((next_pull, f));
            next_pull += 1;
        }
        let pos = pending.iter().position(|&(d, _)| d == display).expect("frame pulled");
        let (_, frame) = pending.remove(pos).expect("position valid");
        let qp = match ftype {
            FrameType::Intra => rc.frame_qp(FrameKind::Intra),
            FrameType::Predicted => rc.frame_qp(FrameKind::Inter),
            // Disposable B frames ride two QP above the reference they
            // follow — nobody predicts from them, so cheapness is free.
            FrameType::Bidirectional => (last_ref_qp + 2).min(crate::quant::QP_MAX),
        };
        qp_sum += f64::from(qp);
        let (fwd, bwd) = match ftype {
            FrameType::Intra => (None, None),
            FrameType::Predicted => (cur_ref.map(|i| ref_frame(&retained, &ref_window, i)), None),
            FrameType::Bidirectional => (
                prev_ref.map(|i| ref_frame(&retained, &ref_window, i)),
                cur_ref.map(|i| ref_frame(&retained, &ref_window, i)),
            ),
        };
        let (payload, recon) =
            state.encode_frame(&frame, fwd, bwd, ftype, qp, coding_idx as u32, probe);
        let bits = payload.len() as u64 * 8;
        rc.frame_done(bits);
        frame_bits.push(bits);
        container.put_bits(u64::from(ftype.to_code()), 8);
        container.put_bits(u64::from(qp), 8);
        container.put_bits(display as u64, 32);
        container.put_bits(payload.len() as u64, 32);
        container.put_bytes(&payload);
        match mode {
            PassMode::Retain => retained[display] = Some(recon),
            PassMode::Bounded { psnr, residency, .. } => {
                residency.add(1); // the reconstruction just produced
                if let Some(acc) = psnr.as_deref_mut() {
                    acc.push(display, &frame, &recon);
                }
                drop(frame);
                residency.sub(1);
                if ftype == FrameType::Bidirectional {
                    // B recons are never referenced: drop immediately.
                    drop(recon);
                    residency.sub(1);
                } else {
                    ref_window.push((display, recon));
                }
            }
        }
        if let Some(span) = frame_span.as_mut() {
            span.record("display", display);
            span.record(
                "ftype",
                match ftype {
                    FrameType::Intra => "I",
                    FrameType::Predicted => "P",
                    FrameType::Bidirectional => "B",
                },
            );
            span.record("qp", u64::from(qp));
            span.record("bits", bits);
            // Stage deltas accumulated while this frame was coding, as
            // synthesized child spans.
            let after = state.stages.unwrap_or_default();
            vtrace::stage("vcodec.motion_search", after.motion - stages_before.motion);
            vtrace::stage(
                "vcodec.transform_quant",
                after.transform_quant - stages_before.transform_quant,
            );
            vtrace::stage("vcodec.entropy_coding", after.entropy - stages_before.entropy);
            vtrace::stage("vcodec.deblock", after.deblock - stages_before.deblock);
        }
        drop(frame_span);
        if ftype != FrameType::Bidirectional {
            prev_ref = cur_ref;
            cur_ref = Some(display);
            last_ref_qp = qp;
            if let PassMode::Bounded { residency, .. } = mode {
                // Evict recons that left the reference window: only
                // `cur_ref` stays referenceable (plus `prev_ref` when B
                // frames need a forward reference).
                let before = ref_window.len();
                ref_window.retain(|&(d, _)| {
                    Some(d) == cur_ref || (config.bframes && Some(d) == prev_ref)
                });
                residency.sub(before - ref_window.len());
            }
        }
    }

    // The pass is over: the reference window (and any stray pending
    // frames) drop here, so the residency ledger must release them before
    // a following pass (two-pass main) re-fills the window.
    if let PassMode::Bounded { residency, .. } = mode {
        residency.sub(ref_window.len() + pending.len());
    }

    PassResult {
        bytes: container.finish(),
        recon: retained.into_iter().map(|f| f.expect("all frames coded")).collect(),
        frame_bits,
        kernels: state.counters,
        sb_intra: state.sb_intra,
        sb_inter: state.sb_inter,
        sb_skip: state.sb_skip,
        sb_split: state.sb_split,
        qp_sum,
    }
}

/// Quantized residual for one superblock-sized region: per-8×8-tile levels
/// in raster order.
struct SbLevels {
    tiles: Vec<Vec<i32>>,
    any_nonzero: bool,
}

/// Accumulated seconds per coarse encoder stage, sampled only when
/// verbose tracing is on (see [`FrameEncoder::stages`]).
#[derive(Clone, Copy, Default)]
struct StageTimes {
    motion: f64,
    transform_quant: f64,
    entropy: f64,
    deblock: f64,
}

/// Per-pass encoder state.
struct FrameEncoder<'cfg> {
    config: &'cfg EncoderConfig,
    width: usize,
    height: usize,
    sb: usize,
    /// MV of each coded superblock this frame (None = intra/skip-less),
    /// used for spatial prediction.
    mv_grid: Vec<Option<MotionVector>>,
    sbs_x: usize,
    sbs_y: usize,
    counters: KernelCounters,
    sb_intra: u64,
    sb_inter: u64,
    sb_skip: u64,
    sb_split: u64,
    /// Coarse stage timing, active only under verbose tracing (`None`
    /// otherwise, so the hot loops pay one `is_some` check per stage).
    stages: Option<StageTimes>,
}

impl<'cfg> FrameEncoder<'cfg> {
    fn new(config: &'cfg EncoderConfig, width: usize, height: usize) -> FrameEncoder<'cfg> {
        let sb = config.family.superblock_size();
        let sbs_x = width.div_ceil(sb);
        let sbs_y = height.div_ceil(sb);
        FrameEncoder {
            config,
            width,
            height,
            sb,
            mv_grid: vec![None; sbs_x * sbs_y],
            sbs_x,
            sbs_y,
            counters: KernelCounters::new(),
            sb_intra: 0,
            sb_inter: 0,
            sb_skip: 0,
            sb_split: 0,
            stages: vtrace::verbose().then(StageTimes::default),
        }
    }

    /// Starts a stage timer iff stage sampling is active.
    fn stage_start(&self) -> Option<Instant> {
        self.stages.is_some().then(Instant::now)
    }

    /// Banks elapsed time since `t0` into one stage accumulator.
    fn stage_end(&mut self, t0: Option<Instant>, pick: impl FnOnce(&mut StageTimes) -> &mut f64) {
        if let (Some(stages), Some(t0)) = (self.stages.as_mut(), t0) {
            *pick(stages) += t0.elapsed().as_secs_f64();
        }
    }

    /// Rate-distortion lambda at a QP (x264-style exponential schedule),
    /// scaled by the family's RD tuning.
    fn lambda(&self, qp: u8) -> f64 {
        0.85 * ((f64::from(qp) - 12.0) / 3.0).exp2().max(0.1) * self.config.family.lambda_scale()
    }

    #[allow(clippy::too_many_arguments)]
    fn encode_frame(
        &mut self,
        frame: &Frame,
        reference: Option<&Frame>,
        bwd_reference: Option<&Frame>,
        ftype: FrameType,
        qp: u8,
        frame_idx: u32,
        probe: &mut dyn Probe,
    ) -> (Vec<u8>, Frame) {
        let backend = self.config.entropy_backend();
        let mut enc = EntropyEncoder::new(backend);
        self.counters.record(Kernel::FrameSetup, (self.width * self.height) as u64);
        probe.kernel(Kernel::FrameSetup, 64);

        let (ref_base, recon_base) = if frame_idx.is_multiple_of(2) {
            (ADDR_REF_A, ADDR_REF_B)
        } else {
            (ADDR_REF_B, ADDR_REF_A)
        };

        let mut recon_y = Plane::filled(self.width, self.height, 128);
        let mut recon_u = Plane::filled(self.width / 2, self.height / 2, 128);
        let mut recon_v = Plane::filled(self.width / 2, self.height / 2, 128);
        self.mv_grid.fill(None);

        let is_intra_frame = ftype == FrameType::Intra || reference.is_none();
        let is_b_frame =
            ftype == FrameType::Bidirectional && reference.is_some() && bwd_reference.is_some();
        let mut params = self.config.preset.search_params(self.config.family);
        params.lambda = self.lambda(qp);

        for sby in 0..self.sbs_y {
            for sbx in 0..self.sbs_x {
                let x0 = sbx * self.sb;
                let y0 = sby * self.sb;
                let ctx = SbContext {
                    frame,
                    reference,
                    qp,
                    params,
                    x0,
                    y0,
                    sbx,
                    sby,
                    ref_base,
                    recon_base,
                };
                if is_intra_frame {
                    self.encode_intra_sb(
                        &mut enc,
                        &ctx,
                        &mut recon_y,
                        &mut recon_u,
                        &mut recon_v,
                        probe,
                        true,
                    );
                } else if is_b_frame {
                    self.encode_b_sb(
                        &mut enc,
                        &ctx,
                        bwd_reference.expect("checked"),
                        &mut recon_y,
                        &mut recon_u,
                        &mut recon_v,
                        probe,
                    );
                } else {
                    self.encode_inter_sb(
                        &mut enc,
                        &ctx,
                        &mut recon_y,
                        &mut recon_u,
                        &mut recon_v,
                        probe,
                    );
                }
            }
        }

        // In-loop deblocking (skippable for ablation runs).
        if self.config.in_loop_deblock {
            let t_db = self.stage_start();
            let (fy, ey) = deblock_plane(&mut recon_y, 8, qp);
            let (fu, eu) = deblock_plane(&mut recon_u, 8, qp);
            let (fv, ev) = deblock_plane(&mut recon_v, 8, qp);
            self.stage_end(t_db, |s| &mut s.deblock);
            self.counters.record(Kernel::Deblock, (self.width * self.height) as u64);
            probe.kernel(Kernel::Deblock, ey + eu + ev);
            report_ratio_branches(probe, BranchSite::DeblockFired, fy + fu + fv, ey + eu + ev, 64);
        }

        let payload = enc.finish();
        self.counters.record(Kernel::Entropy, payload.len() as u64);
        let recon = Frame::from_planes(frame.resolution(), recon_y, recon_u, recon_v);
        (payload, recon)
    }

    /// Chooses the best intra mode for a luma region by SATD cost.
    fn best_intra_mode(
        &mut self,
        orig: &Block,
        recon_y: &Plane,
        x0: usize,
        y0: usize,
        lambda: f64,
    ) -> (IntraMode, f64) {
        let all_modes = self.config.family.intra_modes();
        let modes: &[IntraMode] = if self.config.preset.full_intra_search() {
            all_modes
        } else {
            // Cheap subset at fast presets.
            &all_modes[..all_modes.len().min(2)]
        };
        let mut best = (IntraMode::Dc, f64::INFINITY);
        for &mode in modes {
            let pred = predict_intra(recon_y, x0, y0, orig.size(), mode);
            self.counters.record(Kernel::IntraPred, (orig.size() * orig.size()) as u64);
            let d = satd(orig, &pred) as f64;
            let cost = d + lambda * 3.0; // ~3 bits of mode signalling
            if cost < best.1 {
                best = (mode, cost);
            }
        }
        best
    }

    /// Computes the quantized residual for a region given its prediction.
    fn compute_levels(
        &mut self,
        plane: &Plane,
        pred: &Block,
        x0: usize,
        y0: usize,
        qp: u8,
        dz: Deadzone,
    ) -> SbLevels {
        let t_tq = self.stage_start();
        let size = pred.size();
        let orig = Block::copy_from(plane, x0 as isize, y0 as isize, size);
        let mut tiles = Vec::with_capacity((size / 8) * (size / 8));
        let mut any = false;
        for ty in (0..size).step_by(8) {
            for tx in (0..size).step_by(8) {
                let mut resid = [0i32; 64];
                for dy in 0..8 {
                    for dx in 0..8 {
                        resid[dy * 8 + dx] = i32::from(orig.get(tx + dx, ty + dy))
                            - i32::from(pred.get(tx + dx, ty + dy));
                    }
                }
                let coeffs = fdct(TransformSize::T8, &resid);
                self.counters.record(Kernel::Fdct, 64);
                let levels = quantize(&coeffs, qp, dz);
                self.counters.record(Kernel::Quant, 64);
                if levels.iter().any(|&l| l != 0) {
                    any = true;
                }
                tiles.push(levels);
            }
        }
        self.stage_end(t_tq, |s| &mut s.transform_quant);
        SbLevels { tiles, any_nonzero: any }
    }

    /// Entropy-codes precomputed levels and reconstructs the region into
    /// `recon`.
    #[allow(clippy::too_many_arguments)]
    fn emit_levels(
        &mut self,
        enc: &mut EntropyEncoder,
        recon: &mut Plane,
        pred: &Block,
        x0: usize,
        y0: usize,
        qp: u8,
        levels: &SbLevels,
        probe: &mut dyn Probe,
    ) {
        let size = pred.size();
        let mut tile_idx = 0;
        for ty in (0..size).step_by(8) {
            for tx in (0..size).step_by(8) {
                let tile = &levels.tiles[tile_idx];
                tile_idx += 1;
                let bits_before = enc.bits_written();
                let t_en = self.stage_start();
                enc.put_coeff_block(TransformSize::T8, tile);
                self.stage_end(t_en, |s| &mut s.entropy);
                self.counters.record(Kernel::Entropy, enc.bits_written() - bits_before);
                let nz = tile.iter().filter(|&&l| l != 0).count() as u64;
                probe.branch(BranchSite::CoeffCoded, nz > 0);
                report_ratio_branches(probe, BranchSite::CoeffNonzero, nz, 64, 16);
                probe.kernel(Kernel::Entropy, 8 + nz * 4);
                // Reconstruct.
                let deq = dequantize(tile, qp);
                self.counters.record(Kernel::Dequant, 64);
                let rec = idct(TransformSize::T8, &deq);
                self.counters.record(Kernel::Idct, 64);
                probe.kernel(Kernel::Idct, 64);
                let mut out = Block::zero(8);
                for dy in 0..8 {
                    for dx in 0..8 {
                        let v = (i32::from(pred.get(tx + dx, ty + dy)) + rec[dy * 8 + dx])
                            .clamp(0, 255);
                        out.set(dx, dy, v as i16);
                    }
                }
                out.paste_into(recon, x0 + tx, y0 + ty);
            }
        }
    }

    /// Intra-codes one superblock (luma + chroma). When `standalone` the
    /// mode value is written as-is (I frames); P frames offset it by 3.
    #[allow(clippy::too_many_arguments)]
    fn encode_intra_sb(
        &mut self,
        enc: &mut EntropyEncoder,
        ctx: &SbContext<'_>,
        recon_y: &mut Plane,
        recon_u: &mut Plane,
        recon_v: &mut Plane,
        probe: &mut dyn Probe,
        standalone: bool,
    ) {
        let SbContext { frame, qp, x0, y0, .. } = *ctx;
        let lambda = self.lambda(qp);
        let orig = Block::copy_from(frame.y(), x0 as isize, y0 as isize, self.sb);
        probe_region_rows(probe, ADDR_CUR, self.width, x0, y0, self.sb, false);
        let (mode, whole_cost) = self.best_intra_mode(&orig, recon_y, x0, y0, lambda);
        probe.kernel(Kernel::IntraPred, (self.sb * self.sb) as u64);
        self.counters.record(Kernel::ModeDecision, 16);
        probe.kernel(Kernel::ModeDecision, 16);

        // Split-intra alternative: families with partitioned coding units
        // may predict each quadrant with its own mode, which pays off on
        // sharp-edged content where one prediction per superblock is poor.
        let try_split = self.config.family.supports_split() && self.config.preset.try_split();
        let half = self.sb / 2;
        let quads = [(0, 0), (half, 0), (0, half), (half, half)];
        let split_wins = try_split && {
            let mut split_cost = lambda * 2.0; // split-flag signalling
            for (qx, qy) in quads {
                let qorig =
                    Block::copy_from(frame.y(), (x0 + qx) as isize, (y0 + qy) as isize, half);
                let (_, qcost) = self.best_intra_mode(&qorig, recon_y, x0 + qx, y0 + qy, lambda);
                split_cost += qcost;
            }
            self.counters.record(Kernel::ModeDecision, 16);
            probe.kernel(Kernel::ModeDecision, 16);
            split_cost < whole_cost
        };
        if try_split {
            probe.branch(BranchSite::SplitTaken, split_wins);
        }
        if split_wins {
            enc.put_uval(CtxClass::Mode, if standalone { 4 } else { 7 });
            // Quadrants in raster order; each re-chooses its mode against
            // the live reconstruction so the decoder's predictions match.
            let mut first_mode = IntraMode::Dc;
            for (i, (qx, qy)) in quads.iter().enumerate() {
                let qorig =
                    Block::copy_from(frame.y(), (x0 + qx) as isize, (y0 + qy) as isize, half);
                let (qmode, _) = self.best_intra_mode(&qorig, recon_y, x0 + qx, y0 + qy, lambda);
                if i == 0 {
                    first_mode = qmode;
                }
                enc.put_uval(CtxClass::Mode, u64::from(qmode.to_id()));
                let qpred = predict_intra(recon_y, x0 + qx, y0 + qy, half, qmode);
                let qlev =
                    self.compute_levels(frame.y(), &qpred, x0 + qx, y0 + qy, qp, Deadzone::Intra);
                self.emit_levels(enc, recon_y, &qpred, x0 + qx, y0 + qy, qp, &qlev, probe);
            }
            probe_region_rows(probe, ctx.recon_base, self.width, x0, y0, self.sb, true);
            // Chroma rides on the first quadrant's mode at half size.
            let (cx, cy, cs) = (x0 / 2, y0 / 2, self.sb / 2);
            for (plane_idx, (src, rec)) in
                [(frame.u(), recon_u), (frame.v(), recon_v)].into_iter().enumerate()
            {
                let cpred = predict_intra(rec, cx, cy, cs, first_mode);
                self.counters.record(Kernel::IntraPred, (cs * cs) as u64);
                let clev = self.compute_levels(src, &cpred, cx, cy, qp, Deadzone::Intra);
                self.emit_levels(enc, rec, &cpred, cx, cy, qp, &clev, probe);
                let chroma_off = if plane_idx == 0 { ADDR_CHROMA_U } else { ADDR_CHROMA_V };
                probe_region_rows(
                    probe,
                    ctx.recon_base + chroma_off,
                    self.width / 2,
                    cx,
                    cy,
                    cs,
                    true,
                );
            }
            self.sb_intra += 1;
            self.sb_split += 1;
            self.mv_grid[ctx.sby * self.sbs_x + ctx.sbx] = None;
            return;
        }
        if standalone {
            enc.put_uval(CtxClass::Mode, u64::from(mode.to_id()));
        } else {
            enc.put_uval(CtxClass::Mode, 3 + u64::from(mode.to_id()));
        }
        // Luma.
        let pred = predict_intra(recon_y, x0, y0, self.sb, mode);
        let levels = self.compute_levels(frame.y(), &pred, x0, y0, qp, Deadzone::Intra);
        self.emit_levels(enc, recon_y, &pred, x0, y0, qp, &levels, probe);
        probe_region_rows(probe, ctx.recon_base, self.width, x0, y0, self.sb, true);
        // Chroma (same mode at half size).
        let (cx, cy, cs) = (x0 / 2, y0 / 2, self.sb / 2);
        for (plane_idx, (src, rec)) in
            [(frame.u(), recon_u), (frame.v(), recon_v)].into_iter().enumerate()
        {
            let cpred = predict_intra(rec, cx, cy, cs, mode);
            self.counters.record(Kernel::IntraPred, (cs * cs) as u64);
            let clev = self.compute_levels(src, &cpred, cx, cy, qp, Deadzone::Intra);
            self.emit_levels(enc, rec, &cpred, cx, cy, qp, &clev, probe);
            let chroma_off = if plane_idx == 0 { ADDR_CHROMA_U } else { ADDR_CHROMA_V };
            probe_region_rows(probe, ctx.recon_base + chroma_off, self.width / 2, cx, cy, cs, true);
        }
        self.sb_intra += 1;
        self.mv_grid[ctx.sby * self.sbs_x + ctx.sbx] = None;
    }

    /// Inter-codes one superblock on a P frame: skip / inter / split /
    /// intra, chosen by RD cost.
    #[allow(clippy::too_many_arguments)]
    fn encode_inter_sb(
        &mut self,
        enc: &mut EntropyEncoder,
        ctx: &SbContext<'_>,
        recon_y: &mut Plane,
        recon_u: &mut Plane,
        recon_v: &mut Plane,
        probe: &mut dyn Probe,
    ) {
        let SbContext { frame, reference, qp, params, x0, y0, sbx, sby, .. } = *ctx;
        let reference = reference.expect("P frame requires a reference");
        let lambda = self.lambda(qp);
        let orig = Block::copy_from(frame.y(), x0 as isize, y0 as isize, self.sb);
        probe_region_rows(probe, ADDR_CUR, self.width, x0, y0, self.sb, false);

        // Spatial MV predictor.
        let grid_at = |dx: isize, dy: isize| -> Option<MotionVector> {
            let gx = sbx as isize + dx;
            let gy = sby as isize + dy;
            if gx < 0 || gy < 0 || gx >= self.sbs_x as isize || gy >= self.sbs_y as isize {
                None
            } else {
                self.mv_grid[gy as usize * self.sbs_x + gx as usize]
            }
        };
        let pred_mv = median_predictor(grid_at(-1, 0), grid_at(0, -1), grid_at(1, -1));

        // Motion search.
        let mut mstats = SearchStats::default();
        let t_mo = self.stage_start();
        let mres = search(&orig, reference.y(), x0, y0, pred_mv, &params, &mut mstats);
        self.stage_end(t_mo, |s| &mut s.motion);
        self.counters.record(Kernel::MotionFullPel, mstats.samples);
        probe.kernel(Kernel::MotionFullPel, mstats.samples);
        // Reference window touched by the search.
        let win = self.sb + 2 * params.range as usize;
        probe_region_rows(
            probe,
            ctx.ref_base,
            self.width,
            x0.saturating_sub(params.range as usize),
            y0.saturating_sub(params.range as usize),
            win,
            false,
        );
        report_ratio_branches(
            probe,
            BranchSite::SearchAccept,
            mstats.positions / 6 + 1,
            mstats.positions,
            48,
        );

        // Intra alternative.
        let (intra_mode, intra_cost) = self.best_intra_mode(&orig, recon_y, x0, y0, lambda);
        let inter_pred = motion_compensate(reference.y(), x0, y0, self.sb, mres.mv);
        self.counters.record(Kernel::MotionComp, (self.sb * self.sb) as u64);
        probe.kernel(Kernel::MotionComp, (self.sb * self.sb) as u64);
        let inter_d =
            if params.use_satd { satd(&orig, &inter_pred) } else { sad(&orig, &inter_pred) } as f64;
        let inter_cost = inter_d + lambda * f64::from(mres.mv.cost_bits(pred_mv) + 2);
        self.counters.record(Kernel::ModeDecision, 32);
        probe.kernel(Kernel::ModeDecision, 32);

        // Split alternative (quadrant MVs).
        let try_split = self.config.family.supports_split() && self.config.preset.try_split();
        let mut split: Option<(Vec<MotionVector>, f64)> = None;
        if try_split {
            let half = self.sb / 2;
            let mut mvs = Vec::with_capacity(4);
            // Partition signalling plus the base MV the quadrant MVDs are
            // coded against.
            let mut cost = lambda * f64::from(mres.mv.cost_bits(pred_mv) + 6);
            for (qx, qy) in [(0, 0), (half, 0), (0, half), (half, half)] {
                let qorig =
                    Block::copy_from(frame.y(), (x0 + qx) as isize, (y0 + qy) as isize, half);
                let mut qstats = SearchStats::default();
                let t_mo = self.stage_start();
                let qres =
                    search(&qorig, reference.y(), x0 + qx, y0 + qy, mres.mv, &params, &mut qstats);
                self.stage_end(t_mo, |s| &mut s.motion);
                self.counters.record(Kernel::MotionFullPel, qstats.samples);
                probe.kernel(Kernel::MotionFullPel, qstats.samples);
                // Re-measure distortion with the same metric the
                // whole-block alternative uses (the search's internal cost
                // is SAD-based, which would bias the comparison toward
                // splitting at presets that decide on SATD).
                let qpred = motion_compensate(reference.y(), x0 + qx, y0 + qy, half, qres.mv);
                self.counters.record(Kernel::MotionComp, (half * half) as u64);
                let qd = if params.use_satd { satd(&qorig, &qpred) } else { sad(&qorig, &qpred) };
                cost += qd as f64 + lambda * f64::from(qres.mv.cost_bits(mres.mv));
                mvs.push(qres.mv);
            }
            if cost < inter_cost && cost < intra_cost {
                split = Some((mvs, cost));
            }
            probe.branch(BranchSite::SplitTaken, split.is_some());
        }

        let intra_wins = split.is_none() && intra_cost < inter_cost * 0.95;
        probe.branch(BranchSite::ModeIsIntra, intra_wins);

        if intra_wins {
            self.encode_intra_sb(enc, ctx, recon_y, recon_u, recon_v, probe, false);
            probe.branch(BranchSite::SkipTaken, false);
            return;
        }

        if let Some((mvs, _)) = split {
            self.sb_split += 1;
            self.sb_inter += 1;
            enc.put_uval(CtxClass::Mode, 2);
            probe.branch(BranchSite::SkipTaken, false);
            // Base MV first (quadrant MVDs are coded relative to it).
            enc.put_sval(CtxClass::MvX, i64::from(mres.mv.x) - i64::from(pred_mv.x));
            enc.put_sval(CtxClass::MvY, i64::from(mres.mv.y) - i64::from(pred_mv.y));
            let half = self.sb / 2;
            for (i, (qx, qy)) in [(0, 0), (half, 0), (0, half), (half, half)].iter().enumerate() {
                let mv = mvs[i];
                enc.put_sval(CtxClass::MvX, i64::from(mv.x) - i64::from(mres.mv.x));
                enc.put_sval(CtxClass::MvY, i64::from(mv.y) - i64::from(mres.mv.y));
                let qpred = motion_compensate(reference.y(), x0 + qx, y0 + qy, half, mv);
                self.counters.record(Kernel::MotionComp, (half * half) as u64);
                let lev =
                    self.compute_levels(frame.y(), &qpred, x0 + qx, y0 + qy, qp, Deadzone::Inter);
                self.emit_levels(enc, recon_y, &qpred, x0 + qx, y0 + qy, qp, &lev, probe);
            }
            self.code_inter_chroma(enc, ctx, recon_u, recon_v, mres.mv, probe);
            self.mv_grid[sby * self.sbs_x + sbx] = Some(mvs[0]);
            probe_region_rows(probe, ctx.recon_base, self.width, x0, y0, self.sb, true);
            return;
        }

        // Whole-SB inter: compute residual, then decide skip vs coded.
        let levels = self.compute_levels(frame.y(), &inter_pred, x0, y0, qp, Deadzone::Inter);
        let (cx, cy, cs) = (x0 / 2, y0 / 2, self.sb / 2);
        let cmv = MotionVector::new(mres.mv.x / 2, mres.mv.y / 2);
        let upred = motion_compensate(reference.u(), cx, cy, cs, cmv);
        let vpred = motion_compensate(reference.v(), cx, cy, cs, cmv);
        self.counters.record(Kernel::MotionComp, 2 * (cs * cs) as u64);
        let ulev = self.compute_levels(frame.u(), &upred, cx, cy, qp, Deadzone::Inter);
        let vlev = self.compute_levels(frame.v(), &vpred, cx, cy, qp, Deadzone::Inter);

        let can_skip =
            mres.mv == pred_mv && !levels.any_nonzero && !ulev.any_nonzero && !vlev.any_nonzero;
        probe.branch(BranchSite::SkipTaken, can_skip);
        if can_skip {
            self.sb_skip += 1;
            enc.put_uval(CtxClass::Mode, 0);
            inter_pred.paste_into(recon_y, x0, y0);
            upred.paste_into(recon_u, cx, cy);
            vpred.paste_into(recon_v, cx, cy);
        } else {
            self.sb_inter += 1;
            enc.put_uval(CtxClass::Mode, 1);
            enc.put_sval(CtxClass::MvX, i64::from(mres.mv.x) - i64::from(pred_mv.x));
            enc.put_sval(CtxClass::MvY, i64::from(mres.mv.y) - i64::from(pred_mv.y));
            self.emit_levels(enc, recon_y, &inter_pred, x0, y0, qp, &levels, probe);
            self.emit_levels(enc, recon_u, &upred, cx, cy, qp, &ulev, probe);
            self.emit_levels(enc, recon_v, &vpred, cx, cy, qp, &vlev, probe);
        }
        probe_region_rows(probe, ctx.recon_base, self.width, x0, y0, self.sb, true);
        let _ = intra_mode;
        self.mv_grid[sby * self.sbs_x + sbx] = Some(mres.mv);
    }

    /// Codes one superblock of a B frame: skip-direct / forward / backward
    /// / bidirectional / intra, chosen by RD cost. Mode syntax (distinct
    /// from P frames): 0 = skip (direct forward from the predictor MV),
    /// 1 = forward (MVD), 2 = backward (MVD), 3 = bi (two MVDs),
    /// 4+ = intra.
    #[allow(clippy::too_many_arguments)]
    fn encode_b_sb(
        &mut self,
        enc: &mut EntropyEncoder,
        ctx: &SbContext<'_>,
        bwd_ref: &Frame,
        recon_y: &mut Plane,
        recon_u: &mut Plane,
        recon_v: &mut Plane,
        probe: &mut dyn Probe,
    ) {
        let SbContext { frame, reference, qp, params, x0, y0, sbx, sby, .. } = *ctx;
        let fwd_ref = reference.expect("B frame requires a forward reference");
        let lambda = self.lambda(qp);
        let orig = Block::copy_from(frame.y(), x0 as isize, y0 as isize, self.sb);
        probe_region_rows(probe, ADDR_CUR, self.width, x0, y0, self.sb, false);

        let grid_at = |dx: isize, dy: isize| -> Option<MotionVector> {
            let gx = sbx as isize + dx;
            let gy = sby as isize + dy;
            if gx < 0 || gy < 0 || gx >= self.sbs_x as isize || gy >= self.sbs_y as isize {
                None
            } else {
                self.mv_grid[gy as usize * self.sbs_x + gx as usize]
            }
        };
        let pred_mv = median_predictor(grid_at(-1, 0), grid_at(0, -1), grid_at(1, -1));

        // Search both directions.
        let mut stats_f = SearchStats::default();
        let mut stats_b = SearchStats::default();
        let t_mo = self.stage_start();
        let fres = search(&orig, fwd_ref.y(), x0, y0, pred_mv, &params, &mut stats_f);
        let bres = search(&orig, bwd_ref.y(), x0, y0, pred_mv, &params, &mut stats_b);
        self.stage_end(t_mo, |s| &mut s.motion);
        self.counters.record(Kernel::MotionFullPel, stats_f.samples + stats_b.samples);
        probe.kernel(Kernel::MotionFullPel, stats_f.samples + stats_b.samples);
        report_ratio_branches(
            probe,
            BranchSite::SearchAccept,
            (stats_f.positions + stats_b.positions) / 6 + 1,
            stats_f.positions + stats_b.positions,
            48,
        );

        let distort = |pred: &Block| -> f64 {
            let d = if params.use_satd { satd(&orig, pred) } else { sad(&orig, pred) };
            d as f64
        };
        let fwd_pred = motion_compensate(fwd_ref.y(), x0, y0, self.sb, fres.mv);
        let bwd_pred = motion_compensate(bwd_ref.y(), x0, y0, self.sb, bres.mv);
        self.counters.record(Kernel::MotionComp, 2 * (self.sb * self.sb) as u64);
        let fwd_cost = distort(&fwd_pred) + lambda * f64::from(fres.mv.cost_bits(pred_mv) + 3);
        let bwd_cost = distort(&bwd_pred) + lambda * f64::from(bres.mv.cost_bits(pred_mv) + 3);
        // Bidirectional average: worth trying from Medium up.
        let bi = if self.config.preset.try_split() {
            let avg = average_blocks(&fwd_pred, &bwd_pred);
            let cost = distort(&avg)
                + lambda * f64::from(fres.mv.cost_bits(pred_mv) + bres.mv.cost_bits(pred_mv) + 4);
            Some((avg, cost))
        } else {
            None
        };
        let (intra_mode, intra_cost) = self.best_intra_mode(&orig, recon_y, x0, y0, lambda);
        self.counters.record(Kernel::ModeDecision, 48);
        probe.kernel(Kernel::ModeDecision, 48);

        // Pick the winner.
        enum BMode {
            Fwd,
            Bwd,
            Bi,
            Intra,
        }
        let mut best = (BMode::Fwd, fwd_cost);
        if bwd_cost < best.1 {
            best = (BMode::Bwd, bwd_cost);
        }
        if let Some((_, c)) = &bi {
            if *c < best.1 {
                best = (BMode::Bi, *c);
            }
        }
        if intra_cost < best.1 * 0.95 {
            best = (BMode::Intra, intra_cost);
        }
        probe.branch(BranchSite::ModeIsIntra, matches!(best.0, BMode::Intra));

        let (cx, cy, cs) = (x0 / 2, y0 / 2, self.sb / 2);
        match best.0 {
            BMode::Intra => {
                enc.put_uval(CtxClass::Mode, 4 + u64::from(intra_mode.to_id()));
                let pred = predict_intra(recon_y, x0, y0, self.sb, intra_mode);
                let lev = self.compute_levels(frame.y(), &pred, x0, y0, qp, Deadzone::Intra);
                self.emit_levels(enc, recon_y, &pred, x0, y0, qp, &lev, probe);
                for (src, rec) in [(frame.u(), &mut *recon_u), (frame.v(), &mut *recon_v)] {
                    let cpred = predict_intra(rec, cx, cy, cs, intra_mode);
                    let clev = self.compute_levels(src, &cpred, cx, cy, qp, Deadzone::Intra);
                    self.emit_levels(enc, rec, &cpred, cx, cy, qp, &clev, probe);
                }
                self.sb_intra += 1;
                self.mv_grid[sby * self.sbs_x + sbx] = None;
                probe.branch(BranchSite::SkipTaken, false);
                return;
            }
            BMode::Fwd | BMode::Bwd | BMode::Bi => {}
        }

        // Build the luma/chroma predictions of the chosen inter mode.
        let (luma_pred, upred, vpred, mode_code, mvs): (
            Block,
            Block,
            Block,
            u64,
            Vec<MotionVector>,
        ) = match best.0 {
            BMode::Fwd => {
                let cmv = MotionVector::new(fres.mv.x / 2, fres.mv.y / 2);
                (
                    fwd_pred.clone(),
                    motion_compensate(fwd_ref.u(), cx, cy, cs, cmv),
                    motion_compensate(fwd_ref.v(), cx, cy, cs, cmv),
                    1,
                    vec![fres.mv],
                )
            }
            BMode::Bwd => {
                let cmv = MotionVector::new(bres.mv.x / 2, bres.mv.y / 2);
                (
                    bwd_pred.clone(),
                    motion_compensate(bwd_ref.u(), cx, cy, cs, cmv),
                    motion_compensate(bwd_ref.v(), cx, cy, cs, cmv),
                    2,
                    vec![bres.mv],
                )
            }
            BMode::Bi => {
                let (avg, _) = bi.expect("bi cost computed");
                let cf = MotionVector::new(fres.mv.x / 2, fres.mv.y / 2);
                let cb = MotionVector::new(bres.mv.x / 2, bres.mv.y / 2);
                let u = average_blocks(
                    &motion_compensate(fwd_ref.u(), cx, cy, cs, cf),
                    &motion_compensate(bwd_ref.u(), cx, cy, cs, cb),
                );
                let v = average_blocks(
                    &motion_compensate(fwd_ref.v(), cx, cy, cs, cf),
                    &motion_compensate(bwd_ref.v(), cx, cy, cs, cb),
                );
                (avg, u, v, 3, vec![fres.mv, bres.mv])
            }
            BMode::Intra => unreachable!("handled above"),
        };
        self.counters.record(Kernel::MotionComp, 2 * (cs * cs) as u64);

        let levels = self.compute_levels(frame.y(), &luma_pred, x0, y0, qp, Deadzone::Inter);
        let ulev = self.compute_levels(frame.u(), &upred, cx, cy, qp, Deadzone::Inter);
        let vlev = self.compute_levels(frame.v(), &vpred, cx, cy, qp, Deadzone::Inter);

        // Skip-direct: forward prediction at the predictor MV, no residual.
        let can_skip = mode_code == 1
            && mvs[0] == pred_mv
            && !levels.any_nonzero
            && !ulev.any_nonzero
            && !vlev.any_nonzero;
        probe.branch(BranchSite::SkipTaken, can_skip);
        if can_skip {
            self.sb_skip += 1;
            enc.put_uval(CtxClass::Mode, 0);
            luma_pred.paste_into(recon_y, x0, y0);
            upred.paste_into(recon_u, cx, cy);
            vpred.paste_into(recon_v, cx, cy);
        } else {
            self.sb_inter += 1;
            enc.put_uval(CtxClass::Mode, mode_code);
            for mv in &mvs {
                enc.put_sval(CtxClass::MvX, i64::from(mv.x) - i64::from(pred_mv.x));
                enc.put_sval(CtxClass::MvY, i64::from(mv.y) - i64::from(pred_mv.y));
            }
            self.emit_levels(enc, recon_y, &luma_pred, x0, y0, qp, &levels, probe);
            self.emit_levels(enc, recon_u, &upred, cx, cy, qp, &ulev, probe);
            self.emit_levels(enc, recon_v, &vpred, cx, cy, qp, &vlev, probe);
        }
        probe_region_rows(probe, ctx.recon_base, self.width, x0, y0, self.sb, true);
        self.mv_grid[sby * self.sbs_x + sbx] = Some(mvs[0]);
    }

    /// Codes the chroma residual of a split superblock with the SB-level MV.
    fn code_inter_chroma(
        &mut self,
        enc: &mut EntropyEncoder,
        ctx: &SbContext<'_>,
        recon_u: &mut Plane,
        recon_v: &mut Plane,
        mv: MotionVector,
        probe: &mut dyn Probe,
    ) {
        let reference = ctx.reference.expect("P frame requires a reference");
        let (cx, cy, cs) = (ctx.x0 / 2, ctx.y0 / 2, self.sb / 2);
        let cmv = MotionVector::new(mv.x / 2, mv.y / 2);
        for (src, rec, rplane) in
            [(ctx.frame.u(), recon_u, reference.u()), (ctx.frame.v(), recon_v, reference.v())]
        {
            let pred = motion_compensate(rplane, cx, cy, cs, cmv);
            self.counters.record(Kernel::MotionComp, (cs * cs) as u64);
            let lev = self.compute_levels(src, &pred, cx, cy, ctx.qp, Deadzone::Inter);
            self.emit_levels(enc, rec, &pred, cx, cy, ctx.qp, &lev, probe);
        }
    }
}

/// Immutable context for coding one superblock.
struct SbContext<'a> {
    frame: &'a Frame,
    reference: Option<&'a Frame>,
    qp: u8,
    params: SearchParams,
    x0: usize,
    y0: usize,
    sbx: usize,
    sby: usize,
    ref_base: u64,
    recon_base: u64,
}

/// Element-wise average of two prediction blocks (bidirectional MC).
fn average_blocks(a: &Block, b: &Block) -> Block {
    debug_assert_eq!(a.size(), b.size());
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| ((i32::from(x) + i32::from(y) + 1) / 2) as i16)
        .collect();
    Block::from_data(a.size(), data)
}

/// Emits one memory event per row of a rectangular plane region.
fn probe_region_rows(
    probe: &mut dyn Probe,
    base: u64,
    plane_width: usize,
    x0: usize,
    y0: usize,
    size: usize,
    write: bool,
) {
    for row in 0..size {
        let addr = base + ((y0 + row) * plane_width + x0) as u64;
        if write {
            probe.mem_write(addr, size as u64);
        } else {
            probe.mem_read(addr, size as u64);
        }
    }
}

/// Emits up to `cap` branch events whose taken ratio approximates
/// `taken`/`total` while preserving the interleaved pattern a predictor
/// would see.
fn report_ratio_branches(
    probe: &mut dyn Probe,
    site: BranchSite,
    taken: u64,
    total: u64,
    cap: u64,
) {
    if total == 0 {
        return;
    }
    let events = total.min(cap);
    let taken_events = (taken * events).div_ceil(total.max(1)).min(events);
    if taken_events == 0 {
        for _ in 0..events {
            probe.branch(site, false);
        }
        return;
    }
    let stride = events / taken_events;
    for i in 0..events {
        let is_taken = stride > 0 && i % stride == 0 && i / stride < taken_events;
        probe.branch(site, is_taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_video(frames: usize) -> Video {
        // A moving gradient: inter prediction has real work to do.
        let res = vframe::Resolution::new(64, 48);
        let fs: Vec<Frame> = (0..frames)
            .map(|t| {
                vframe::color::frame_from_fn(res, |x, y| {
                    let v = ((x + 2 * t as u32) * 3 + y * 2) % 256;
                    vframe::color::Yuv::new(v as u8, 128, (y * 4 % 255) as u8)
                })
            })
            .collect();
        Video::new(fs, 30.0)
    }

    #[test]
    fn encode_produces_bitstream_and_recon() {
        let v = tiny_video(5);
        let cfg = EncoderConfig::new(
            CodecFamily::Avc,
            Preset::Fast,
            RateControl::ConstQuality { crf: 24.0 },
        );
        let out = encode(&v, &cfg);
        assert!(out.bytes.len() > 16, "bitstream too small");
        assert_eq!(out.recon.len(), 5);
        assert_eq!(out.stats.frames, 5);
        assert!(out.stats.encode_seconds > 0.0);
        // Quality should be decent at CRF 24 on smooth content.
        let q = vframe::metrics::psnr_video(&v, &out.recon);
        assert!(q > 28.0, "PSNR too low: {q}");
    }

    #[test]
    fn lower_crf_gives_higher_quality_and_bitrate() {
        let v = tiny_video(4);
        let run = |crf: f64| {
            let cfg = EncoderConfig::new(
                CodecFamily::Avc,
                Preset::Fast,
                RateControl::ConstQuality { crf },
            );
            let out = encode(&v, &cfg);
            (out.bytes.len(), vframe::metrics::psnr_video(&v, &out.recon))
        };
        let (bytes_hi_q, psnr_hi_q) = run(16.0);
        let (bytes_lo_q, psnr_lo_q) = run(38.0);
        assert!(psnr_hi_q > psnr_lo_q, "{psnr_hi_q} vs {psnr_lo_q}");
        assert!(bytes_hi_q > bytes_lo_q, "{bytes_hi_q} vs {bytes_lo_q}");
    }

    #[test]
    fn all_families_encode() {
        let v = tiny_video(3);
        for family in CodecFamily::ALL {
            let cfg =
                EncoderConfig::new(family, Preset::Medium, RateControl::ConstQuality { crf: 28.0 });
            let out = encode(&v, &cfg);
            assert!(!out.bytes.is_empty(), "{family}");
            let q = vframe::metrics::psnr_video(&v, &out.recon);
            assert!(q > 25.0, "{family}: PSNR {q}");
        }
    }

    #[test]
    fn static_content_mostly_skips() {
        let res = vframe::Resolution::new(64, 64);
        let frame = vframe::color::frame_from_fn(res, |x, y| {
            vframe::color::Yuv::new(((x * y) % 200) as u8, 128, 128)
        });
        let v = Video::new(vec![frame; 6], 30.0);
        let cfg = EncoderConfig::new(
            CodecFamily::Avc,
            Preset::Fast,
            RateControl::ConstQuality { crf: 26.0 },
        );
        let out = encode(&v, &cfg);
        assert!(
            out.stats.sb_skip > out.stats.sb_inter,
            "static content should skip: skip={} inter={}",
            out.stats.sb_skip,
            out.stats.sb_inter
        );
    }

    #[test]
    fn two_pass_returns_log_and_hits_rate_better() {
        let v = tiny_video(8);
        let target = 400_000u64; // bps
        let run = |rate| {
            let cfg = EncoderConfig::new(CodecFamily::Avc, Preset::Fast, rate);
            encode(&v, &cfg)
        };
        let two = run(RateControl::TwoPassBitrate { bps: target });
        assert!(two.first_pass.is_some());
        let single = run(RateControl::Bitrate { bps: target });
        assert!(single.first_pass.is_none());
        let dur = v.duration_secs();
        for out in [&two, &single] {
            let rate = out.bitrate_bps(dur);
            assert!(
                rate < target as f64 * 3.0 && rate > target as f64 / 20.0,
                "bitrate {rate} wildly off target {target}"
            );
        }
    }

    #[test]
    fn higher_effort_is_slower_but_not_worse() {
        let v = tiny_video(5);
        let run = |preset| {
            let cfg = EncoderConfig::new(
                CodecFamily::Vp9,
                preset,
                RateControl::ConstQuality { crf: 30.0 },
            );
            let out = encode(&v, &cfg);
            (out.stats.kernels.total_samples(), out.bytes.len())
        };
        let (work_fast, _) = run(Preset::UltraFast);
        let (work_slow, _) = run(Preset::VerySlow);
        assert!(
            work_slow > work_fast * 2,
            "veryslow should do much more work: {work_slow} vs {work_fast}"
        );
    }

    #[test]
    fn coding_order_without_bframes_is_display_order() {
        let order = coding_order(7, 3, false);
        assert_eq!(
            order,
            vec![
                (0, FrameType::Intra),
                (1, FrameType::Predicted),
                (2, FrameType::Predicted),
                (3, FrameType::Intra),
                (4, FrameType::Predicted),
                (5, FrameType::Predicted),
                (6, FrameType::Intra),
            ]
        );
    }

    #[test]
    fn coding_order_with_bframes_reorders() {
        let order = coding_order(6, 60, true);
        assert_eq!(
            order,
            vec![
                (0, FrameType::Intra),
                (2, FrameType::Predicted),
                (1, FrameType::Bidirectional),
                (4, FrameType::Predicted),
                (3, FrameType::Bidirectional),
                (5, FrameType::Predicted),
            ]
        );
    }

    #[test]
    fn coding_order_respects_gop_boundaries() {
        // No B frame may straddle a keyframe boundary; every display index
        // appears exactly once; each B is preceded in coding order by its
        // two references.
        for (n, gop) in [(8usize, 4u32), (10, 3), (5, 5), (1, 4), (2, 2)] {
            let order = coding_order(n, gop, true);
            assert_eq!(order.len(), n, "n={n} gop={gop}");
            let mut seen = vec![false; n];
            let mut refs_coded: Vec<usize> = Vec::new();
            for &(d, t) in &order {
                assert!(!seen[d], "duplicate display {d}");
                seen[d] = true;
                match t {
                    FrameType::Intra => {
                        assert_eq!(d as u32 % gop, 0, "I frame off GOP boundary");
                        refs_coded.push(d);
                    }
                    FrameType::Predicted => refs_coded.push(d),
                    FrameType::Bidirectional => {
                        assert!(
                            refs_coded.iter().any(|&r| r < d) && refs_coded.iter().any(|&r| r > d),
                            "B at {d} lacks surrounding references"
                        );
                    }
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn stream_encode_is_byte_identical_across_rate_modes() {
        let v = tiny_video(9);
        let configs = [
            EncoderConfig::new(
                CodecFamily::Avc,
                Preset::Fast,
                RateControl::ConstQuality { crf: 26.0 },
            ),
            EncoderConfig::new(
                CodecFamily::Hevc,
                Preset::Fast,
                RateControl::Bitrate { bps: 300_000 },
            )
            .with_gop(4),
            EncoderConfig::new(
                CodecFamily::Vp9,
                Preset::Fast,
                RateControl::TwoPassBitrate { bps: 250_000 },
            )
            .with_bframes(),
        ];
        for cfg in configs {
            let full = encode(&v, &cfg);
            let mut src = VideoSource::new(&v);
            let stream = encode_stream(&mut src, &cfg, None).expect("stream encode");
            assert_eq!(stream.bytes, full.bytes, "{:?}", cfg.rate);
            assert_eq!(
                stream.quality_db,
                vframe::metrics::psnr_video(&v, &full.recon),
                "{:?}",
                cfg.rate
            );
            assert_eq!(stream.stats.frames, full.stats.frames);
            assert_eq!(stream.stats.avg_qp, full.stats.avg_qp);
            assert_eq!(stream.first_pass, full.first_pass);
        }
    }

    #[test]
    fn stream_residency_is_bounded_independent_of_clip_length() {
        for (bframes, expect) in [(false, 3usize), (true, 5)] {
            let mut cfg = EncoderConfig::new(
                CodecFamily::Avc,
                Preset::UltraFast,
                RateControl::ConstQuality { crf: 30.0 },
            )
            .with_gop(4);
            if bframes {
                cfg = cfg.with_bframes();
            }
            assert_eq!(required_window(&cfg), expect);
            let mut peaks = Vec::new();
            for frames in [16usize, 48] {
                let v = tiny_video(frames);
                let mut src = VideoSource::new(&v);
                let out = encode_stream(&mut src, &cfg, Some(expect)).expect("stream encode");
                assert!(
                    out.peak_resident_frames <= expect,
                    "bframes={bframes} frames={frames}: peak {} > {expect}",
                    out.peak_resident_frames
                );
                peaks.push(out.peak_resident_frames);
            }
            // The bound must not grow with clip length.
            assert_eq!(peaks[0], peaks[1], "bframes={bframes}: {peaks:?}");
        }
    }

    #[test]
    fn stream_rejects_window_below_structural_minimum() {
        let v = tiny_video(4);
        let cfg = EncoderConfig::new(
            CodecFamily::Avc,
            Preset::UltraFast,
            RateControl::ConstQuality { crf: 30.0 },
        );
        let mut src = VideoSource::new(&v);
        assert_eq!(
            encode_stream(&mut src, &cfg, Some(2)).unwrap_err(),
            EncodeError::WindowTooSmall { required: 3, window: 2 }
        );
    }

    #[test]
    fn frame_type_codes_roundtrip() {
        for t in [FrameType::Intra, FrameType::Predicted, FrameType::Bidirectional] {
            assert_eq!(FrameType::from_code(t.to_code()), Some(t));
        }
        assert_eq!(FrameType::from_code(9), None);
    }

    #[test]
    fn ratio_branch_reporter_preserves_ratio() {
        struct Count(u64, u64);
        impl Probe for Count {
            fn branch(&mut self, _s: BranchSite, taken: bool) {
                self.0 += u64::from(taken);
                self.1 += 1;
            }
        }
        let mut c = Count(0, 0);
        report_ratio_branches(&mut c, BranchSite::SearchAccept, 25, 100, 64);
        let ratio = c.0 as f64 / c.1 as f64;
        assert!((ratio - 0.25).abs() < 0.1, "ratio {ratio}");
        assert!(c.1 <= 64);
    }
}
