//! Syntax-level entropy coding with two interchangeable backends.
//!
//! The codec codes one syntax (flags, unsigned/signed values, residual
//! coefficient blocks) through either backend:
//!
//! * [`EntropyBackend::Vlc`] — variable-length codes (Exp-Golomb), the
//!   CAVLC-class option: fast, context-free, a few percent worse
//!   compression.
//! * [`EntropyBackend::Arith`] — adaptive binary arithmetic coding, the
//!   CABAC-class option (Section 2.1 of the paper): every bin is coded
//!   under an adaptive context, buying compression at the cost of strictly
//!   sequential, branch-heavy work.
//!
//! Both backends serialize the *same* syntax, so the choice is a pure
//! rate/speed trade-off — exactly the knob the encoder families in
//! [`crate::family`] differentiate on.

use crate::arith::{ArithDecoder, ArithEncoder, Context};
use crate::bitio::{BitReader, BitWriter, ReadBitsError};
use crate::golomb;
use crate::transform::{zigzag, TransformSize};

/// Entropy backend selection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EntropyBackend {
    /// Exp-Golomb variable-length codes (CAVLC-class).
    Vlc,
    /// Adaptive binary arithmetic coding (CABAC-class) with the given
    /// context adaptation shift (smaller adapts faster).
    Arith {
        /// Context adaptation shift, 1..=7.
        shift: u8,
    },
}

/// Syntax-element classes; each class gets its own adaptive context bank in
/// the arithmetic backend so statistics do not bleed between elements.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CtxClass {
    /// Macroblock/superblock mode decisions.
    Mode,
    /// Motion-vector difference, horizontal.
    MvX,
    /// Motion-vector difference, vertical.
    MvY,
    /// Zero-run lengths in coefficient blocks.
    Run,
    /// Coefficient magnitudes.
    Level,
    /// "Block has any coefficients" flags.
    CodedFlag,
    /// "This was the last coefficient" flags.
    LastFlag,
    /// Generic header flags.
    Flag,
    /// Quantizer deltas.
    QpDelta,
}

const CTX_CLASSES: usize = 9;
/// Truncated-unary prefix length before escaping to bypass Exp-Golomb.
const TU_MAX: u64 = 12;
/// Context positions tracked per class (later bins share the last context).
const CTX_PER_CLASS: usize = 6;

fn class_index(c: CtxClass) -> usize {
    match c {
        CtxClass::Mode => 0,
        CtxClass::MvX => 1,
        CtxClass::MvY => 2,
        CtxClass::Run => 3,
        CtxClass::Level => 4,
        CtxClass::CodedFlag => 5,
        CtxClass::LastFlag => 6,
        CtxClass::Flag => 7,
        CtxClass::QpDelta => 8,
    }
}

#[derive(Clone, Debug)]
struct ContextBank {
    ctxs: Vec<Context>,
}

impl ContextBank {
    fn new(shift: u8) -> ContextBank {
        ContextBank { ctxs: vec![Context::new(shift); CTX_CLASSES * CTX_PER_CLASS] }
    }

    fn at(&mut self, class: CtxClass, pos: usize) -> &mut Context {
        let p = pos.min(CTX_PER_CLASS - 1);
        &mut self.ctxs[class_index(class) * CTX_PER_CLASS + p]
    }
}

enum EncInner {
    Vlc(BitWriter),
    Arith { enc: ArithEncoder, bank: ContextBank },
}

/// Serializes codec syntax through the selected backend.
///
/// ```
/// use vcodec::entropy::{CtxClass, EntropyBackend, EntropyDecoder, EntropyEncoder};
///
/// for backend in [EntropyBackend::Vlc, EntropyBackend::Arith { shift: 4 }] {
///     let mut enc = EntropyEncoder::new(backend);
///     enc.put_uval(CtxClass::Mode, 3);
///     enc.put_sval(CtxClass::MvX, -7);
///     enc.put_flag(CtxClass::Flag, true);
///     let bytes = enc.finish();
///     let mut dec = EntropyDecoder::new(backend, &bytes);
///     assert_eq!(dec.get_uval(CtxClass::Mode).unwrap(), 3);
///     assert_eq!(dec.get_sval(CtxClass::MvX).unwrap(), -7);
///     assert_eq!(dec.get_flag(CtxClass::Flag).unwrap(), true);
/// }
/// ```
pub struct EntropyEncoder {
    inner: EncInner,
    est_bits: f64,
}

impl std::fmt::Debug for EntropyEncoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EntropyEncoder").field("est_bits", &self.est_bits).finish()
    }
}

impl EntropyEncoder {
    /// Creates an encoder for the given backend.
    pub fn new(backend: EntropyBackend) -> EntropyEncoder {
        let inner = match backend {
            EntropyBackend::Vlc => EncInner::Vlc(BitWriter::new()),
            EntropyBackend::Arith { shift } => {
                EncInner::Arith { enc: ArithEncoder::new(), bank: ContextBank::new(shift) }
            }
        };
        EntropyEncoder { inner, est_bits: 0.0 }
    }

    /// Codes a single flag under `class`'s first context.
    pub fn put_flag(&mut self, class: CtxClass, bit: bool) {
        match &mut self.inner {
            EncInner::Vlc(w) => {
                w.put_bit(bit);
                self.est_bits += 1.0;
            }
            EncInner::Arith { enc, bank } => {
                let ctx = bank.at(class, 0);
                self.est_bits += bin_cost(ctx.prob(), bit);
                enc.encode(ctx, bit);
            }
        }
    }

    /// Codes an unsigned value: Exp-Golomb in the VLC backend; truncated
    /// unary (contexts) + bypass Exp-Golomb escape in the arithmetic one.
    pub fn put_uval(&mut self, class: CtxClass, v: u64) {
        match &mut self.inner {
            EncInner::Vlc(w) => {
                golomb::write_ue(w, v);
                self.est_bits += f64::from(golomb::ue_bits(v));
            }
            EncInner::Arith { enc, bank } => {
                let prefix = v.min(TU_MAX);
                for i in 0..prefix {
                    let ctx = bank.at(class, i as usize);
                    self.est_bits += bin_cost(ctx.prob(), true);
                    enc.encode(ctx, true);
                }
                if prefix < TU_MAX {
                    let ctx = bank.at(class, prefix as usize);
                    self.est_bits += bin_cost(ctx.prob(), false);
                    enc.encode(ctx, false);
                } else {
                    // Escape: remainder in bypass Exp-Golomb.
                    let rem = v - TU_MAX;
                    let bits = golomb_bypass_bits(rem);
                    self.est_bits += f64::from(bits);
                    encode_bypass_golomb(enc, rem);
                }
            }
        }
    }

    /// Codes a signed value using the `0, 1, -1, 2, -2…` mapping.
    pub fn put_sval(&mut self, class: CtxClass, v: i64) {
        let mapped = if v > 0 { (v as u64) * 2 - 1 } else { (-v as u64) * 2 };
        self.put_uval(class, mapped);
    }

    /// Codes `count` raw bits with no modelling (bypass / plain bits).
    pub fn put_raw(&mut self, v: u64, count: u32) {
        self.est_bits += f64::from(count);
        match &mut self.inner {
            EncInner::Vlc(w) => w.put_bits(v, count),
            EncInner::Arith { enc, .. } => enc.encode_bypass(v, count),
        }
    }

    /// Codes one quantized coefficient block (zig-zag, run/level/sign with a
    /// last-coefficient flag), preceded by a coded-block flag.
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != size.area()`.
    pub fn put_coeff_block(&mut self, size: TransformSize, levels: &[i32]) {
        assert_eq!(levels.len(), size.area(), "level count must match block size");
        let scan = zigzag(size);
        let nz: Vec<(usize, i32)> = scan
            .iter()
            .enumerate()
            .filter_map(|(si, &pos)| (levels[pos] != 0).then_some((si, levels[pos])))
            .collect();
        self.put_flag(CtxClass::CodedFlag, !nz.is_empty());
        if nz.is_empty() {
            return;
        }
        let mut prev = 0usize;
        for (k, &(si, level)) in nz.iter().enumerate() {
            let run = si - prev;
            prev = si + 1;
            self.put_uval(CtxClass::Run, run as u64);
            self.put_uval(CtxClass::Level, (level.unsigned_abs() - 1).into());
            self.put_raw(u64::from(level < 0), 1);
            self.put_flag(CtxClass::LastFlag, k + 1 == nz.len());
        }
    }

    /// Estimated bits emitted so far (exact for VLC; the arithmetic
    /// backend's estimate is the information-theoretic cost under its
    /// context models, accurate to a fraction of a percent). Drives rate
    /// control and RDO bit costs.
    pub fn bits_written(&self) -> u64 {
        self.est_bits.ceil() as u64
    }

    /// Flushes the backend and returns the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        match self.inner {
            EncInner::Vlc(w) => w.finish(),
            EncInner::Arith { enc, .. } => enc.finish(),
        }
    }
}

/// Information cost in bits of coding `bit` with probability-of-zero `prob`.
fn bin_cost(prob: u8, bit: bool) -> f64 {
    let p0 = f64::from(prob) / 256.0;
    let p = if bit { 1.0 - p0 } else { p0 };
    -p.max(1e-6).log2()
}

/// Bits used by the bypass Exp-Golomb escape for `v`.
fn golomb_bypass_bits(v: u64) -> u32 {
    golomb::ue_bits(v)
}

fn encode_bypass_golomb(enc: &mut ArithEncoder, v: u64) {
    let val = v + 1;
    let bits = 64 - val.leading_zeros();
    for _ in 0..bits - 1 {
        enc.encode_bypass(0, 1);
    }
    enc.encode_bypass(val, bits);
}

fn decode_bypass_golomb(dec: &mut ArithDecoder<'_>) -> Result<u64, ReadBitsError> {
    let mut zeros = 0u32;
    while dec.decode_bypass(1) == 0 {
        zeros += 1;
        if zeros > 63 {
            return Err(ReadBitsError);
        }
    }
    let mut v = 1u64;
    for _ in 0..zeros {
        v = (v << 1) | dec.decode_bypass(1);
    }
    Ok(v - 1)
}

enum DecInner<'a> {
    Vlc(BitReader<'a>),
    Arith { dec: ArithDecoder<'a>, bank: ContextBank },
}

/// Deserializes codec syntax; must be constructed with the same backend the
/// encoder used.
pub struct EntropyDecoder<'a> {
    inner: DecInner<'a>,
}

impl std::fmt::Debug for EntropyDecoder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EntropyDecoder").finish()
    }
}

impl<'a> EntropyDecoder<'a> {
    /// Creates a decoder over `bytes` for the given backend.
    pub fn new(backend: EntropyBackend, bytes: &'a [u8]) -> EntropyDecoder<'a> {
        let inner = match backend {
            EntropyBackend::Vlc => DecInner::Vlc(BitReader::new(bytes)),
            EntropyBackend::Arith { shift } => {
                DecInner::Arith { dec: ArithDecoder::new(bytes), bank: ContextBank::new(shift) }
            }
        };
        EntropyDecoder { inner }
    }

    /// Decodes a flag coded by [`EntropyEncoder::put_flag`].
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] if the VLC stream is exhausted.
    pub fn get_flag(&mut self, class: CtxClass) -> Result<bool, ReadBitsError> {
        match &mut self.inner {
            DecInner::Vlc(r) => r.get_bit(),
            DecInner::Arith { dec, bank } => Ok(dec.decode(bank.at(class, 0))),
        }
    }

    /// Decodes an unsigned value coded by [`EntropyEncoder::put_uval`].
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] on stream exhaustion or malformed codes.
    pub fn get_uval(&mut self, class: CtxClass) -> Result<u64, ReadBitsError> {
        match &mut self.inner {
            DecInner::Vlc(r) => golomb::read_ue(r),
            DecInner::Arith { dec, bank } => {
                let mut prefix = 0u64;
                while prefix < TU_MAX && dec.decode(bank.at(class, prefix as usize)) {
                    prefix += 1;
                }
                if prefix < TU_MAX {
                    Ok(prefix)
                } else {
                    Ok(TU_MAX + decode_bypass_golomb(dec)?)
                }
            }
        }
    }

    /// Decodes a signed value coded by [`EntropyEncoder::put_sval`].
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] on stream exhaustion or malformed codes.
    pub fn get_sval(&mut self, class: CtxClass) -> Result<i64, ReadBitsError> {
        let v = self.get_uval(class)?;
        if v % 2 == 1 {
            Ok(v.div_ceil(2) as i64)
        } else {
            Ok(-((v / 2) as i64))
        }
    }

    /// Decodes `count` raw bits.
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] if the VLC stream is exhausted.
    pub fn get_raw(&mut self, count: u32) -> Result<u64, ReadBitsError> {
        match &mut self.inner {
            DecInner::Vlc(r) => r.get_bits(count),
            DecInner::Arith { dec, .. } => Ok(dec.decode_bypass(count)),
        }
    }

    /// Decodes a coefficient block coded by
    /// [`EntropyEncoder::put_coeff_block`], returning row-major levels.
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] on stream exhaustion or if the coded runs
    /// overflow the block (corrupt stream).
    pub fn get_coeff_block(&mut self, size: TransformSize) -> Result<Vec<i32>, ReadBitsError> {
        let scan = zigzag(size);
        let mut levels = vec![0i32; size.area()];
        if !self.get_flag(CtxClass::CodedFlag)? {
            return Ok(levels);
        }
        let mut si = 0usize;
        loop {
            let run = self.get_uval(CtxClass::Run)? as usize;
            si += run;
            if si >= scan.len() {
                return Err(ReadBitsError);
            }
            let mag = self.get_uval(CtxClass::Level)? + 1;
            let mag = i32::try_from(mag).map_err(|_| ReadBitsError)?;
            let neg = self.get_raw(1)? == 1;
            levels[scan[si]] = if neg { -mag } else { mag };
            si += 1;
            if self.get_flag(CtxClass::LastFlag)? {
                return Ok(levels);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [EntropyBackend; 3] = [
        EntropyBackend::Vlc,
        EntropyBackend::Arith { shift: 4 },
        EntropyBackend::Arith { shift: 5 },
    ];

    #[test]
    fn scalar_syntax_roundtrip() {
        for backend in BACKENDS {
            let mut enc = EntropyEncoder::new(backend);
            for v in 0..100u64 {
                enc.put_uval(CtxClass::Run, v);
                enc.put_sval(CtxClass::MvX, 50 - v as i64);
                enc.put_flag(CtxClass::Flag, v % 3 == 0);
                enc.put_raw(v % 16, 4);
            }
            enc.put_uval(CtxClass::Level, 100_000); // escape path
            let bytes = enc.finish();
            let mut dec = EntropyDecoder::new(backend, &bytes);
            for v in 0..100u64 {
                assert_eq!(dec.get_uval(CtxClass::Run).unwrap(), v, "{backend:?}");
                assert_eq!(dec.get_sval(CtxClass::MvX).unwrap(), 50 - v as i64);
                assert_eq!(dec.get_flag(CtxClass::Flag).unwrap(), v % 3 == 0);
                assert_eq!(dec.get_raw(4).unwrap(), v % 16);
            }
            assert_eq!(dec.get_uval(CtxClass::Level).unwrap(), 100_000);
        }
    }

    fn sample_block() -> Vec<i32> {
        let mut levels = vec![0i32; 64];
        levels[0] = 15;
        levels[1] = -3;
        levels[8] = 2;
        levels[17] = -1;
        levels[63] = 1;
        levels
    }

    #[test]
    fn coeff_block_roundtrip() {
        for backend in BACKENDS {
            let mut enc = EntropyEncoder::new(backend);
            enc.put_coeff_block(TransformSize::T8, &sample_block());
            enc.put_coeff_block(TransformSize::T8, &vec![0i32; 64]);
            let mut four = vec![0i32; 16];
            four[5] = -42;
            enc.put_coeff_block(TransformSize::T4, &four);
            let bytes = enc.finish();
            let mut dec = EntropyDecoder::new(backend, &bytes);
            assert_eq!(dec.get_coeff_block(TransformSize::T8).unwrap(), sample_block());
            assert_eq!(dec.get_coeff_block(TransformSize::T8).unwrap(), vec![0i32; 64]);
            assert_eq!(dec.get_coeff_block(TransformSize::T4).unwrap(), four);
        }
    }

    #[test]
    fn arith_beats_vlc_on_sparse_blocks() {
        // Typical quantized residuals: mostly empty blocks with small
        // levels clustered at low frequencies — exactly what adaptive
        // contexts exploit.
        let mut blocks = Vec::new();
        let mut x = 3u64;
        for _ in 0..400 {
            let mut b = vec![0i32; 64];
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let n = (x >> 60) as usize % 4; // 0..3 nonzero coeffs
            for k in 0..n {
                b[k * 2] = 1 + (x >> (20 + k)) as i32 % 3;
            }
            blocks.push(b);
        }
        let measure = |backend| {
            let mut enc = EntropyEncoder::new(backend);
            for b in &blocks {
                enc.put_coeff_block(TransformSize::T8, b);
            }
            enc.finish().len()
        };
        let vlc = measure(EntropyBackend::Vlc);
        let arith = measure(EntropyBackend::Arith { shift: 4 });
        assert!(arith < vlc, "arith {arith} bytes vs vlc {vlc} bytes");
    }

    #[test]
    fn bits_written_tracks_vlc_exactly() {
        let mut enc = EntropyEncoder::new(EntropyBackend::Vlc);
        enc.put_uval(CtxClass::Run, 7); // ue(7) = 7 bits
        enc.put_flag(CtxClass::Flag, true);
        assert_eq!(enc.bits_written(), 8);
    }

    #[test]
    fn bits_written_estimates_arith_closely() {
        let mut enc = EntropyEncoder::new(EntropyBackend::Arith { shift: 4 });
        for i in 0..2000u64 {
            enc.put_uval(CtxClass::Level, i % 5);
        }
        let est = enc.bits_written() as f64;
        let actual = (enc.finish().len() * 8) as f64;
        // The flush adds ~4 bytes; allow 5% + flush slack.
        assert!((est - actual).abs() < actual * 0.05 + 48.0, "est {est} vs actual {actual}");
    }

    #[test]
    fn corrupt_run_is_detected() {
        // Encode a run that overflows the block by hand-crafting with VLC.
        let mut enc = EntropyEncoder::new(EntropyBackend::Vlc);
        enc.put_flag(CtxClass::CodedFlag, true);
        enc.put_uval(CtxClass::Run, 64); // run past end of an 8x8 block
        enc.put_uval(CtxClass::Level, 0);
        enc.put_raw(0, 1);
        enc.put_flag(CtxClass::LastFlag, true);
        let bytes = enc.finish();
        let mut dec = EntropyDecoder::new(EntropyBackend::Vlc, &bytes);
        assert!(dec.get_coeff_block(TransformSize::T8).is_err());
    }
}
