//! Intra prediction.
//!
//! Intra-coded blocks are predicted from already-reconstructed neighbours
//! within the same frame (the row above and the column to the left), then
//! only the prediction residual is transformed and coded. Four modes are
//! implemented; the AVC-class encoder uses DC/H/V, the HEVC- and VP9-class
//! encoders add Planar (one of the "new compression tools" newer codecs
//! introduce — Section 2.1 of the paper).

use vframe::block::Block;
use vframe::Plane;

/// Intra prediction modes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IntraMode {
    /// Flat prediction from the mean of the available neighbours.
    Dc,
    /// Each row copies the left neighbour sample.
    Horizontal,
    /// Each column copies the top neighbour sample.
    Vertical,
    /// Bilinear blend of top and left neighbours (HEVC/VP9-class tool).
    Planar,
}

impl IntraMode {
    /// Stable numeric id used in the bitstream.
    pub fn to_id(self) -> u8 {
        match self {
            IntraMode::Dc => 0,
            IntraMode::Horizontal => 1,
            IntraMode::Vertical => 2,
            IntraMode::Planar => 3,
        }
    }

    /// Inverse of [`IntraMode::to_id`]; `None` for unknown ids (corrupt
    /// stream).
    pub fn from_id(id: u8) -> Option<IntraMode> {
        match id {
            0 => Some(IntraMode::Dc),
            1 => Some(IntraMode::Horizontal),
            2 => Some(IntraMode::Vertical),
            3 => Some(IntraMode::Planar),
            _ => None,
        }
    }
}

/// Neighbour samples available to an intra block at `(x, y)`.
#[derive(Clone, Debug)]
struct Neighbors {
    /// `size` samples from the row above, or `None` at the top edge.
    top: Option<Vec<i32>>,
    /// `size` samples from the column to the left, or `None` at the left
    /// edge.
    left: Option<Vec<i32>>,
    /// Top-right sample for planar extrapolation.
    top_right: i32,
    /// Bottom-left sample for planar extrapolation.
    bottom_left: i32,
}

fn gather_neighbors(recon: &Plane, x: usize, y: usize, size: usize) -> Neighbors {
    let top = (y > 0).then(|| {
        (0..size).map(|i| i32::from(recon.get_clamped((x + i) as isize, y as isize - 1))).collect()
    });
    let left = (x > 0).then(|| {
        (0..size).map(|i| i32::from(recon.get_clamped(x as isize - 1, (y + i) as isize))).collect()
    });
    let top_right = i32::from(recon.get_clamped((x + size) as isize, y as isize - 1));
    let bottom_left = i32::from(recon.get_clamped(x as isize - 1, (y + size) as isize));
    Neighbors { top, left, top_right, bottom_left }
}

/// Predicts a `size × size` block at `(x, y)` from reconstructed samples in
/// `recon` using `mode`.
///
/// Unavailable neighbours (picture edges) degrade gracefully: DC falls back
/// to the mid-level 128, directional modes fall back to DC behaviour on the
/// missing side.
///
/// # Panics
///
/// Panics if `size` is zero.
pub fn predict_intra(recon: &Plane, x: usize, y: usize, size: usize, mode: IntraMode) -> Block {
    assert!(size > 0, "block size must be non-zero");
    let nb = gather_neighbors(recon, x, y, size);
    let mut out = Block::zero(size);
    match mode {
        IntraMode::Dc => {
            let dc = dc_value(&nb);
            for v in out.data_mut() {
                *v = dc as i16;
            }
        }
        IntraMode::Horizontal => {
            let fallback = dc_value(&nb);
            for row in 0..size {
                let v = nb.left.as_ref().map_or(fallback, |l| l[row]);
                for col in 0..size {
                    out.set(col, row, v as i16);
                }
            }
        }
        IntraMode::Vertical => {
            let fallback = dc_value(&nb);
            for col in 0..size {
                let v = nb.top.as_ref().map_or(fallback, |t| t[col]);
                for row in 0..size {
                    out.set(col, row, v as i16);
                }
            }
        }
        IntraMode::Planar => {
            let dc = dc_value(&nb);
            let top: Vec<i32> = nb.top.clone().unwrap_or_else(|| vec![dc; size]);
            let left: Vec<i32> = nb.left.clone().unwrap_or_else(|| vec![dc; size]);
            let n = size as i32;
            for (row, &l) in left.iter().enumerate().take(size) {
                for (col, &t) in top.iter().enumerate().take(size) {
                    let (r, c) = (row as i32, col as i32);
                    let h = (n - 1 - c) * l + (c + 1) * nb.top_right;
                    let v = (n - 1 - r) * t + (r + 1) * nb.bottom_left;
                    out.set(col, row, (((h + v + n) / (2 * n)) as i16).clamp(0, 255));
                }
            }
        }
    }
    out
}

fn dc_value(nb: &Neighbors) -> i32 {
    match (&nb.top, &nb.left) {
        (Some(t), Some(l)) => {
            let sum: i32 = t.iter().chain(l.iter()).sum();
            (sum + (t.len() + l.len()) as i32 / 2) / (t.len() + l.len()) as i32
        }
        (Some(t), None) => (t.iter().sum::<i32>() + t.len() as i32 / 2) / t.len() as i32,
        (None, Some(l)) => (l.iter().sum::<i32>() + l.len() as i32 / 2) / l.len() as i32,
        (None, None) => 128,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_with_gradient() -> Plane {
        let mut p = Plane::filled(16, 16, 0);
        for y in 0..16 {
            for x in 0..16 {
                p.set(x, y, (x * 10 + y) as u8);
            }
        }
        p
    }

    #[test]
    fn mode_ids_roundtrip() {
        for mode in [IntraMode::Dc, IntraMode::Horizontal, IntraMode::Vertical, IntraMode::Planar] {
            assert_eq!(IntraMode::from_id(mode.to_id()), Some(mode));
        }
        assert_eq!(IntraMode::from_id(9), None);
    }

    #[test]
    fn dc_with_no_neighbors_is_midlevel() {
        let p = Plane::filled(16, 16, 200);
        let b = predict_intra(&p, 0, 0, 8, IntraMode::Dc);
        assert!(b.data().iter().all(|&v| v == 128));
    }

    #[test]
    fn dc_averages_neighbors() {
        let p = plane_with_gradient();
        let b = predict_intra(&p, 8, 8, 4, IntraMode::Dc);
        // Top neighbours: x=8..12 at y=7 -> 87,97,107,117; left: x=7 at
        // y=8..12 -> 78,79,80,81. Mean = (408 + 318)/8 = 90.75 -> 91.
        assert_eq!(b.get(0, 0), 91);
        assert!(b.data().iter().all(|&v| v == 91));
    }

    #[test]
    fn vertical_copies_top_row() {
        let p = plane_with_gradient();
        let b = predict_intra(&p, 4, 8, 4, IntraMode::Vertical);
        for col in 0..4 {
            let expected = i16::from(p.get(4 + col, 7));
            for row in 0..4 {
                assert_eq!(b.get(col, row), expected);
            }
        }
    }

    #[test]
    fn horizontal_copies_left_column() {
        let p = plane_with_gradient();
        let b = predict_intra(&p, 8, 4, 4, IntraMode::Horizontal);
        for row in 0..4 {
            let expected = i16::from(p.get(7, 4 + row));
            for col in 0..4 {
                assert_eq!(b.get(col, row), expected);
            }
        }
    }

    #[test]
    fn planar_predicts_gradients_well() {
        // On a linear gradient, planar should beat DC by a wide margin.
        let p = plane_with_gradient();
        let actual = Block::copy_from(&p, 8, 8, 8);
        let planar = predict_intra(&p, 8, 8, 8, IntraMode::Planar);
        let dc = predict_intra(&p, 8, 8, 8, IntraMode::Dc);
        let err = |pred: &Block| {
            pred.data()
                .iter()
                .zip(actual.data())
                .map(|(&a, &b)| i64::from(a - b).unsigned_abs())
                .sum::<u64>()
        };
        assert!(err(&planar) * 5 < err(&dc) * 4, "planar {} dc {}", err(&planar), err(&dc));
    }

    #[test]
    fn prediction_values_are_valid_samples() {
        let p = plane_with_gradient();
        for mode in [IntraMode::Dc, IntraMode::Horizontal, IntraMode::Vertical, IntraMode::Planar] {
            for &(x, y) in &[(0usize, 0usize), (8, 0), (0, 8), (8, 8)] {
                let b = predict_intra(&p, x, y, 8, mode);
                assert!(b.data().iter().all(|&v| (0..=255).contains(&v)), "{mode:?} at {x},{y}");
            }
        }
    }
}
