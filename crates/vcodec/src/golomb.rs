//! Exponential-Golomb codes.
//!
//! The universal variable-length codes H.264 uses for headers, macroblock
//! modes and motion-vector differences. Small values get short codes; the
//! code is prefix-free and self-delimiting, so no length fields are needed.

use crate::bitio::{BitReader, BitWriter, ReadBitsError};

/// Writes an unsigned Exp-Golomb code (order 0): `value 0 → "1"`,
/// `1 → "010"`, `2 → "011"`, `3 → "00100"` …
///
/// ```
/// use vcodec::bitio::{BitReader, BitWriter};
/// use vcodec::golomb::{read_ue, write_ue};
/// let mut w = BitWriter::new();
/// for v in [0u64, 1, 2, 7, 4096] {
///     write_ue(&mut w, v);
/// }
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// for v in [0u64, 1, 2, 7, 4096] {
///     assert_eq!(read_ue(&mut r).unwrap(), v);
/// }
/// ```
pub fn write_ue(w: &mut BitWriter, value: u64) {
    let v = value + 1;
    let bits = 64 - v.leading_zeros();
    // (bits - 1) zero prefix, then the value itself (whose MSB is 1).
    for _ in 0..bits - 1 {
        w.put_bit(false);
    }
    w.put_bits(v, bits);
}

/// Reads an unsigned Exp-Golomb code written by [`write_ue`].
///
/// # Errors
///
/// Returns [`ReadBitsError`] on end of stream or a prefix longer than 63
/// zeros (malformed stream).
pub fn read_ue(r: &mut BitReader<'_>) -> Result<u64, ReadBitsError> {
    let mut zeros = 0u32;
    while !r.get_bit()? {
        zeros += 1;
        if zeros > 63 {
            return Err(ReadBitsError);
        }
    }
    let mut v = 1u64;
    for _ in 0..zeros {
        v = (v << 1) | u64::from(r.get_bit()?);
    }
    Ok(v - 1)
}

/// Writes a signed Exp-Golomb code using the H.264 mapping
/// `0, 1, -1, 2, -2, …`.
pub fn write_se(w: &mut BitWriter, value: i64) {
    let mapped = if value > 0 { (value as u64) * 2 - 1 } else { (-value as u64) * 2 };
    write_ue(w, mapped);
}

/// Reads a signed Exp-Golomb code written by [`write_se`].
///
/// # Errors
///
/// Returns [`ReadBitsError`] on end of stream or malformed prefix.
pub fn read_se(r: &mut BitReader<'_>) -> Result<i64, ReadBitsError> {
    let v = read_ue(r)?;
    if v % 2 == 1 {
        Ok(v.div_ceil(2) as i64)
    } else {
        Ok(-((v / 2) as i64))
    }
}

/// Number of bits [`write_ue`] would emit for `value` — used by RDO bit
/// estimation without touching a writer.
pub fn ue_bits(value: u64) -> u32 {
    let bits = 64 - (value + 1).leading_zeros();
    2 * bits - 1
}

/// Number of bits [`write_se`] would emit for `value`.
pub fn se_bits(value: i64) -> u32 {
    let mapped = if value > 0 { (value as u64) * 2 - 1 } else { (-value as u64) * 2 };
    ue_bits(mapped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_codewords_match_h264_table() {
        // value -> bit pattern length per the H.264 spec table 9-2.
        let expected = [(0u64, 1u64), (1, 3), (2, 3), (3, 5), (4, 5), (5, 5), (6, 5), (7, 7)];
        for (v, len) in expected {
            let mut w = BitWriter::new();
            write_ue(&mut w, v);
            assert_eq!(w.bit_len(), len, "value {v}");
            assert_eq!(u64::from(ue_bits(v)), len, "ue_bits {v}");
        }
    }

    #[test]
    fn ue_roundtrip_wide_range() {
        let mut w = BitWriter::new();
        let values: Vec<u64> = (0..200).chain([1000, 65535, 1 << 40]).collect();
        for &v in &values {
            write_ue(&mut w, v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(read_ue(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn se_roundtrip() {
        let mut w = BitWriter::new();
        let values: Vec<i64> = (-50..=50).chain([-100000, 100000]).collect();
        for &v in &values {
            write_se(&mut w, v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(read_se(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn se_mapping_prefers_small_magnitudes() {
        assert!(se_bits(0) < se_bits(1));
        assert!(se_bits(1) <= se_bits(-1));
        assert!(se_bits(-1) < se_bits(2));
    }

    #[test]
    fn se_bits_matches_actual_encoding() {
        for v in -300..=300i64 {
            let mut w = BitWriter::new();
            write_se(&mut w, v);
            assert_eq!(u64::from(se_bits(v)), w.bit_len(), "value {v}");
        }
    }

    #[test]
    fn malformed_prefix_is_error() {
        // 9 zero bytes: 72 zero bits, prefix too long.
        let bytes = [0u8; 9];
        let mut r = BitReader::new(&bytes);
        assert!(read_ue(&mut r).is_err());
    }
}
