//! Hostile-input decoder tests: every parsing entry point — `decode`,
//! `probe_stream`, `frame_kinds` — must return a typed [`DecodeError`]
//! on corrupt input. Never a panic, never an unbounded loop, and never
//! an allocation sized from an unvalidated header field.
//!
//! The corruption models here are the two a storage or transport fault
//! actually produces: truncation (a torn write, a cut connection) and
//! bit flips (media rot). `prop.rs` separately covers fully random
//! bytes.

use proptest::prelude::*;
use std::sync::OnceLock;
use vcodec::DecodeError;
use vframe::color::{frame_from_fn, Yuv};
use vframe::{Resolution, Video};

/// Frames in the reference stream; see [`valid_stream`].
const STREAM_FRAMES: usize = 6;

/// One valid bitstream, encoded once and shared by every case. B frames
/// and a mid-stream keyframe give the corruption something structural to
/// hit (reference handling, GOP boundaries), not just residual data.
fn valid_stream() -> &'static [u8] {
    static STREAM: OnceLock<Vec<u8>> = OnceLock::new();
    STREAM.get_or_init(|| {
        let res = Resolution::new(48, 32);
        let frames = (0..STREAM_FRAMES)
            .map(|t| {
                frame_from_fn(res, |x, y| {
                    let v = (x * 3 + y * 2 + t as u32 * 7) % 256;
                    Yuv::new(v as u8, ((x + t as u32) % 200) as u8, 128)
                })
            })
            .collect();
        let video = Video::new(frames, 24.0);
        let cfg = vcodec::EncoderConfig::new(
            vcodec::CodecFamily::Avc,
            vcodec::Preset::Fast,
            vcodec::RateControl::ConstQuality { crf: 30.0 },
        )
        .with_gop(4)
        .with_bframes();
        vcodec::encode(&video, &cfg).bytes
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    // A stream cut anywhere loses bytes the frame framing accounts for,
    // so decode must fail — with an error, not a panic or a hang.
    #[test]
    fn truncated_streams_error_never_panic(frac in 0.0f64..1.0) {
        let full = valid_stream();
        let cut = &full[..((full.len() as f64) * frac) as usize];
        prop_assert!(vcodec::decode(cut).is_err());
        let _ = vcodec::probe_stream(cut);
        let _ = vcodec::frame_kinds(cut);
    }

    // A single bit flip anywhere — header fields included — either still
    // decodes (flips in residual data merely change pixels) or fails
    // with a typed error. All three entry points must survive it.
    #[test]
    fn bit_flips_never_panic(frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = valid_stream().to_vec();
        let i = ((bytes.len() as f64) * frac) as usize % bytes.len();
        bytes[i] ^= 1 << bit;
        let _ = vcodec::decode(&bytes);
        let _ = vcodec::probe_stream(&bytes);
        let _ = vcodec::frame_kinds(&bytes);
    }

    // Heavier damage: a burst of flips, as one bad sector would cause.
    #[test]
    fn burst_corruption_never_panics(start in 0.0f64..1.0, len in 1usize..64, xor in 1u8..=255) {
        let mut bytes = valid_stream().to_vec();
        let s = ((bytes.len() as f64) * start) as usize % bytes.len();
        let e = (s + len).min(bytes.len());
        for b in &mut bytes[s..e] {
            *b ^= xor;
        }
        let _ = vcodec::decode(&bytes);
        let _ = vcodec::probe_stream(&bytes);
        let _ = vcodec::frame_kinds(&bytes);
    }
}

// Container header layout (see the encoder): magic 0..4, version 4,
// family 5, backend 6, width 7..9, height 9..11, fps 11..15,
// frames 15..19, gop 19..21, flags 21. All fields big-endian.

#[test]
fn absurd_frame_count_is_rejected_before_allocation() {
    let mut bytes = valid_stream().to_vec();
    bytes[15..19].copy_from_slice(&u32::MAX.to_be_bytes());
    // A count the stream cannot physically hold must die in the header
    // check — not in a `Vec` sized from the lie.
    assert_eq!(vcodec::probe_stream(&bytes), Err(DecodeError::InvalidHeader("frame count")));
    assert_eq!(vcodec::decode(&bytes).unwrap_err(), DecodeError::InvalidHeader("frame count"));
    assert_eq!(vcodec::frame_kinds(&bytes), Err(DecodeError::InvalidHeader("frame count")));
}

#[test]
fn absurd_resolution_is_rejected_before_allocation() {
    let mut bytes = valid_stream().to_vec();
    bytes[7..9].copy_from_slice(&0xFFFEu16.to_be_bytes());
    bytes[9..11].copy_from_slice(&0xFFFEu16.to_be_bytes());
    // 65534 x 65534 would be a ~4 GiB luma plane allocated before the
    // first payload byte is read.
    assert_eq!(vcodec::probe_stream(&bytes), Err(DecodeError::InvalidHeader("resolution")));
    assert_eq!(vcodec::decode(&bytes).unwrap_err(), DecodeError::InvalidHeader("resolution"));
}

#[test]
fn frame_count_exceeding_stream_length_is_rejected() {
    let mut bytes = valid_stream().to_vec();
    // Plausible-looking but still impossible: one more frame than the
    // remaining bytes can frame.
    let lie = (bytes.len() / 10 + 1) as u32;
    bytes[15..19].copy_from_slice(&lie.to_be_bytes());
    assert_eq!(vcodec::probe_stream(&bytes), Err(DecodeError::InvalidHeader("frame count")));
}

#[test]
fn valid_stream_still_decodes() {
    // The guards must not reject the real thing.
    let v = vcodec::decode(valid_stream()).expect("pristine stream decodes");
    assert_eq!(v.len(), STREAM_FRAMES);
    let info = vcodec::probe_stream(valid_stream()).expect("pristine header probes");
    assert_eq!(info.frames as usize, STREAM_FRAMES);
}
