//! Property-based tests on the codec's invariants: every coding layer must
//! round-trip exactly, the transform/quantizer must obey error bounds, and
//! the full encoder/decoder pair must agree bit-for-bit.

use proptest::prelude::*;
use vcodec::arith::{ArithDecoder, ArithEncoder, Context};
use vcodec::bitio::{BitReader, BitWriter};
use vcodec::entropy::{CtxClass, EntropyBackend, EntropyDecoder, EntropyEncoder};
use vcodec::golomb::{read_se, read_ue, write_se, write_ue};
use vcodec::motion::{motion_compensate, MotionVector};
use vcodec::quant::{dequantize, qstep, quantize, Deadzone};
use vcodec::transform::{fdct, idct, TransformSize};
use vframe::color::{frame_from_fn, Yuv};
use vframe::{Plane, Resolution, Video};

proptest! {
    #[test]
    fn bitio_roundtrip(values in prop::collection::vec((any::<u64>(), 1u32..=64), 0..50)) {
        let mut w = BitWriter::new();
        let masked: Vec<(u64, u32)> = values
            .iter()
            .map(|&(v, n)| (if n == 64 { v } else { v & ((1u64 << n) - 1) }, n))
            .collect();
        for &(v, n) in &masked {
            w.put_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &masked {
            prop_assert_eq!(r.get_bits(n).unwrap(), v);
        }
    }

    #[test]
    fn golomb_roundtrip(ue in prop::collection::vec(0u64..1_000_000, 0..60),
                        se in prop::collection::vec(-500_000i64..500_000, 0..60)) {
        let mut w = BitWriter::new();
        for &v in &ue {
            write_ue(&mut w, v);
        }
        for &v in &se {
            write_se(&mut w, v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &ue {
            prop_assert_eq!(read_ue(&mut r).unwrap(), v);
        }
        for &v in &se {
            prop_assert_eq!(read_se(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn arith_roundtrip(bits in prop::collection::vec(any::<bool>(), 0..2000),
                       shift in 2u8..=6) {
        let mut enc = ArithEncoder::new();
        let mut ctx = Context::new(shift);
        for &b in &bits {
            enc.encode(&mut ctx, b);
        }
        let bytes = enc.finish();
        let mut dec = ArithDecoder::new(&bytes);
        let mut ctx = Context::new(shift);
        for &b in &bits {
            prop_assert_eq!(dec.decode(&mut ctx), b);
        }
    }

    #[test]
    fn entropy_syntax_roundtrip(
        uvals in prop::collection::vec(0u64..100_000, 0..40),
        svals in prop::collection::vec(-50_000i64..50_000, 0..40),
        use_arith in any::<bool>(),
    ) {
        let backend = if use_arith { EntropyBackend::Arith { shift: 4 } } else { EntropyBackend::Vlc };
        let mut enc = EntropyEncoder::new(backend);
        for &v in &uvals {
            enc.put_uval(CtxClass::Run, v);
        }
        for &v in &svals {
            enc.put_sval(CtxClass::MvY, v);
        }
        let bytes = enc.finish();
        let mut dec = EntropyDecoder::new(backend, &bytes);
        for &v in &uvals {
            prop_assert_eq!(dec.get_uval(CtxClass::Run).unwrap(), v);
        }
        for &v in &svals {
            prop_assert_eq!(dec.get_sval(CtxClass::MvY).unwrap(), v);
        }
    }

    #[test]
    fn coeff_block_roundtrip(levels in prop::collection::vec(-400i32..400, 64),
                             use_arith in any::<bool>()) {
        let backend = if use_arith { EntropyBackend::Arith { shift: 5 } } else { EntropyBackend::Vlc };
        let mut enc = EntropyEncoder::new(backend);
        enc.put_coeff_block(TransformSize::T8, &levels);
        let bytes = enc.finish();
        let mut dec = EntropyDecoder::new(backend, &bytes);
        prop_assert_eq!(dec.get_coeff_block(TransformSize::T8).unwrap(), levels);
    }

    #[test]
    fn dct_roundtrip_error_bounded(input in prop::collection::vec(-255i32..=255, 64)) {
        let rec = idct(TransformSize::T8, &fdct(TransformSize::T8, &input));
        for (&a, &b) in input.iter().zip(&rec) {
            prop_assert!((a - b).abs() <= 2, "{a} vs {b}");
        }
    }

    #[test]
    fn quant_error_bounded_by_half_step(
        coeffs in prop::collection::vec(-2000i32..=2000, 16),
        qp in 0u8..=51,
    ) {
        let levels = quantize(&coeffs, qp, Deadzone::Intra);
        let rec = dequantize(&levels, qp);
        let bound = qstep(qp) / 2.0 + 1.0;
        for (&c, &r) in coeffs.iter().zip(&rec) {
            prop_assert!((f64::from(c) - f64::from(r)).abs() <= bound);
        }
    }

    #[test]
    fn quant_deadzone_never_inflates_magnitude(
        coeffs in prop::collection::vec(-2000i32..=2000, 16),
        qp in 10u8..=51,
    ) {
        // Inter deadzone levels are never larger in magnitude than intra.
        let inter = quantize(&coeffs, qp, Deadzone::Inter);
        let intra = quantize(&coeffs, qp, Deadzone::Intra);
        for (i, n) in intra.iter().zip(&inter) {
            prop_assert!(n.abs() <= i.abs());
        }
    }

    #[test]
    fn mc_at_integer_vectors_is_a_copy(
        data in prop::collection::vec(any::<u8>(), 32 * 32),
        mvx in -8i16..=8,
        mvy in -8i16..=8,
    ) {
        let plane = Plane::from_data(32, 32, data);
        let mv = MotionVector::from_full_pel(mvx, mvy);
        let b = motion_compensate(&plane, 12, 12, 8, mv);
        for dy in 0..8 {
            for dx in 0..8 {
                let expect = plane.get_clamped(
                    12 + dx as isize + isize::from(mvx),
                    12 + dy as isize + isize::from(mvy),
                );
                prop_assert_eq!(b.get(dx, dy), i16::from(expect));
            }
        }
    }
}

// Full encode/decode agreement on small random videos: the heaviest
// property, run with fewer cases.
proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn encoder_and_decoder_agree_on_random_content(
        seed in any::<u32>(),
        family_idx in 0usize..vcodec::CodecFamily::ALL.len(),
        crf in 16.0f64..44.0,
    ) {
        let res = Resolution::new(48, 32);
        let frames = (0..4)
            .map(|t| {
                frame_from_fn(res, |x, y| {
                    let v = (x.wrapping_mul(seed % 97 + 3)
                        + y.wrapping_mul(seed % 31 + 1)
                        + t * (seed % 13)) % 256;
                    Yuv::new(v as u8, ((x + seed) % 200) as u8, ((y * 2) % 200) as u8)
                })
            })
            .collect();
        let video = Video::new(frames, 30.0);
        let family = vcodec::CodecFamily::ALL[family_idx];
        let cfg = vcodec::EncoderConfig::new(
            family,
            vcodec::Preset::Fast,
            vcodec::RateControl::ConstQuality { crf },
        );
        let out = vcodec::encode(&video, &cfg);
        let decoded = vcodec::decode(&out.bytes).expect("stream must decode");
        for t in 0..video.len() {
            prop_assert_eq!(decoded.frame(t), out.recon.frame(t));
        }
    }
}

// Decoder robustness: arbitrary bytes must produce an error, never a
// panic; and corrupting a valid stream's payload must not panic either.
proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = vcodec::decode(&bytes);
    }

    #[test]
    fn corrupted_valid_streams_never_panic(flip_byte in 16usize..400, xor in 1u8..=255) {
        let res = Resolution::new(32, 32);
        let frames = (0..3)
            .map(|t| {
                frame_from_fn(res, |x, y| Yuv::new(((x * 3 + y + t * 5) % 256) as u8, 128, 128))
            })
            .collect();
        let video = Video::new(frames, 30.0);
        let cfg = vcodec::EncoderConfig::new(
            vcodec::CodecFamily::Avc,
            vcodec::Preset::Fast,
            vcodec::RateControl::ConstQuality { crf: 30.0 },
        );
        let mut bytes = vcodec::encode(&video, &cfg).bytes;
        if flip_byte < bytes.len() {
            bytes[flip_byte] ^= xor;
        }
        let _ = vcodec::decode(&bytes); // Ok or Err both fine; panic is not.
    }
}
