//! Top-Down cycle attribution (Figure 6 of the paper).
//!
//! The Top-Down methodology [Yasin 2014] splits pipeline slots into five
//! buckets: front-end bound (instruction starvation), bad speculation
//! (squashed work after mispredictions), back-end memory bound, back-end
//! core bound (functional-unit pressure), and retiring (useful work).
//! Given the simulator's event counts, this module attributes slot costs
//! with fixed per-event penalties and reports the resulting fractions.

/// Per-event slot penalties (issue-width-4 slots, not cycles).
const ICACHE_MISS_SLOTS: f64 = 80.0;
const MISPREDICT_SLOTS: f64 = 60.0;
const L1D_MISS_SLOTS: f64 = 10.0;
const LLC_MISS_SLOTS: f64 = 300.0;
/// Structural fetch bubbles (decode restarts, taken-branch redirects) as a
/// fraction of instructions — front-end cost present even without misses.
const FETCH_BUBBLE_FRACTION: f64 = 0.05;

/// Fractional Top-Down breakdown; the five fields sum to 1.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TopDown {
    /// Front-end bound (instruction-fetch starvation).
    pub frontend: f64,
    /// Bad speculation (branch mispredictions).
    pub bad_speculation: f64,
    /// Back-end, memory bound.
    pub backend_memory: f64,
    /// Back-end, core bound (functional units).
    pub backend_core: f64,
    /// Retiring (useful slots).
    pub retiring: f64,
}

/// Raw inputs to the attribution.
#[derive(Clone, Copy, Debug, Default)]
pub struct TopDownInputs {
    /// Dynamic instructions (≈ retiring slots).
    pub instructions: f64,
    /// L1I misses.
    pub icache_misses: u64,
    /// Branch mispredictions.
    pub branch_mispredictions: u64,
    /// L1D misses (hitting the LLC).
    pub l1d_misses: u64,
    /// LLC misses (going to DRAM).
    pub llc_misses: u64,
    /// Scalar instruction count (competes for few ports → core pressure).
    pub scalar_instructions: f64,
    /// Vector instruction count.
    pub vector_instructions: f64,
}

/// Computes the Top-Down fractions from raw event counts.
///
/// # Panics
///
/// Panics if `instructions` is not positive.
pub fn attribute(inputs: &TopDownInputs) -> TopDown {
    assert!(inputs.instructions > 0.0, "instruction count must be positive");
    let retiring = inputs.instructions;
    let frontend = inputs.icache_misses as f64 * ICACHE_MISS_SLOTS
        + inputs.instructions * FETCH_BUBBLE_FRACTION;
    let bad = inputs.branch_mispredictions as f64 * MISPREDICT_SLOTS;
    let memory =
        inputs.l1d_misses as f64 * L1D_MISS_SLOTS + inputs.llc_misses as f64 * LLC_MISS_SLOTS;
    // Core-bound pressure: vector units are the contended resource in the
    // hot kernels; scalar decision code stalls less on FUs but serializes.
    let core = inputs.vector_instructions * 0.65 + inputs.scalar_instructions * 0.18;
    let total = retiring + frontend + bad + memory + core;
    TopDown {
        frontend: frontend / total,
        bad_speculation: bad / total,
        backend_memory: memory / total,
        backend_core: core / total,
        retiring: retiring / total,
    }
}

impl TopDown {
    /// Sum of all five fractions (≈ 1; exposed for sanity checks).
    pub fn sum(&self) -> f64 {
        self.frontend
            + self.bad_speculation
            + self.backend_memory
            + self.backend_core
            + self.retiring
    }

    /// Retiring plus back-end-core — the "60% of the time is either
    /// retiring instructions or waiting for the back-end functional units"
    /// observation of Figure 6.
    pub fn useful_or_core(&self) -> f64 {
        self.retiring + self.backend_core
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical_inputs() -> TopDownInputs {
        // Shaped after a mid-entropy VOD transcode: ~2 icache MPKI,
        // ~2.5 branch MPKI, ~1 LLC MPKI.
        TopDownInputs {
            instructions: 1.0e9,
            icache_misses: 2_000_000,
            branch_mispredictions: 2_500_000,
            l1d_misses: 10_000_000,
            llc_misses: 1_000_000,
            scalar_instructions: 0.6e9,
            vector_instructions: 0.4e9,
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let td = attribute(&typical_inputs());
        assert!((td.sum() - 1.0).abs() < 1e-9);
        for f in [td.frontend, td.bad_speculation, td.backend_memory, td.backend_core, td.retiring]
        {
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn typical_shape_matches_figure6() {
        // Figure 6: ~15% FE, ~10% BAD, ~15% BE/Mem, ~60% RET+BE/Core.
        let td = attribute(&typical_inputs());
        assert!((0.03..0.30).contains(&td.frontend), "FE {}", td.frontend);
        assert!((0.03..0.25).contains(&td.bad_speculation), "BAD {}", td.bad_speculation);
        assert!((0.05..0.35).contains(&td.backend_memory), "MEM {}", td.backend_memory);
        assert!(td.useful_or_core() > 0.4, "RET+CORE {}", td.useful_or_core());
    }

    #[test]
    fn more_icache_misses_raise_frontend_share() {
        let base = attribute(&typical_inputs());
        let mut worse = typical_inputs();
        worse.icache_misses *= 4;
        let td = attribute(&worse);
        assert!(td.frontend > base.frontend);
    }

    #[test]
    fn more_llc_misses_raise_memory_share() {
        let base = attribute(&typical_inputs());
        let mut worse = typical_inputs();
        worse.llc_misses *= 5;
        let td = attribute(&worse);
        assert!(td.backend_memory > base.backend_memory);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_instructions_rejected() {
        let _ = attribute(&TopDownInputs::default());
    }
}
