//! SIMD instruction-set analysis (Figures 7 and 8 of the paper).
//!
//! Given the per-kernel work counters an encode produced, this module
//! computes how many dynamic instructions (and cycles, at one op per
//! cycle) the encoder would execute when compiled for each x86 SIMD
//! generation. The two structural facts the paper establishes fall out of
//! the model:
//!
//! * the *scalar* fraction of work (entropy coding, decision logic, the
//!   scalar residue of vector kernels) is untouched by wider vectors, so
//!   gains saturate (Figure 8, "the fraction of time spent in scalar code
//!   remains constant and becomes increasingly dominant");
//! * many kernels cannot use 256-bit registers because their block rows
//!   are only 8–16 samples wide (`max_lanes`), so AVX2 covers only ~15% of
//!   cycles (Figure 7).

use crate::model::kernel_model;
use vcodec::{Kernel, KernelCounters};

/// Instruction overhead of vectorized code relative to the ideal
/// `work / lanes`: shuffles, packs, unaligned loads, and reduction steps.
/// Applied only when the code actually vectorizes (lanes > 1).
const VECTOR_OVERHEAD: f64 = 3.0;

/// x86 SIMD generations, oldest first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum IsaTier {
    /// No vector instructions.
    Scalar,
    /// SSE: 8 effective 8-bit lanes for the integer ops video uses.
    Sse,
    /// SSE2: full 128-bit integer vectors (16 lanes).
    Sse2,
    /// SSE3: 16 lanes plus horizontal-op shortcuts.
    Sse3,
    /// SSE4: 16 lanes plus `mpsadbw`-style specialized ops.
    Sse4,
    /// AVX: 256-bit float only; integer work stays at 16 lanes.
    Avx,
    /// AVX2: 256-bit integer vectors (32 lanes) where geometry allows.
    Avx2,
}

impl IsaTier {
    /// All tiers, oldest first.
    pub const ALL: [IsaTier; 7] = [
        IsaTier::Scalar,
        IsaTier::Sse,
        IsaTier::Sse2,
        IsaTier::Sse3,
        IsaTier::Sse4,
        IsaTier::Avx,
        IsaTier::Avx2,
    ];

    /// Effective parallel 8-bit lanes for video integer kernels.
    pub fn lanes(&self) -> u32 {
        match self {
            IsaTier::Scalar => 1,
            IsaTier::Sse => 8,
            IsaTier::Sse2 | IsaTier::Sse3 | IsaTier::Sse4 | IsaTier::Avx => 16,
            IsaTier::Avx2 => 32,
        }
    }

    /// Instruction-count discount from tier-specific instructions
    /// (horizontal adds, `mpsadbw`, …) relative to plain vector code.
    pub fn op_efficiency(&self) -> f64 {
        match self {
            IsaTier::Scalar | IsaTier::Sse | IsaTier::Sse2 => 1.0,
            IsaTier::Sse3 => 0.96,
            IsaTier::Sse4 => 0.90,
            IsaTier::Avx => 0.88,
            IsaTier::Avx2 => 0.86,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            IsaTier::Scalar => "scalar",
            IsaTier::Sse => "sse",
            IsaTier::Sse2 => "sse2",
            IsaTier::Sse3 => "sse3",
            IsaTier::Sse4 => "sse4",
            IsaTier::Avx => "avx",
            IsaTier::Avx2 => "avx2",
        }
    }
}

/// Instruction classes an encode's dynamic instructions divide into.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct CycleBreakdown {
    /// Scalar instructions (not vectorizable, plus each kernel's scalar
    /// residue).
    pub scalar: f64,
    /// Vector instructions at 128 bits or below.
    pub vec128: f64,
    /// Vector instructions using full 256-bit registers.
    pub vec256: f64,
}

impl CycleBreakdown {
    /// Total instruction (≈ cycle) count.
    pub fn total(&self) -> f64 {
        self.scalar + self.vec128 + self.vec256
    }

    /// Scalar fraction of the total.
    pub fn scalar_fraction(&self) -> f64 {
        self.scalar / self.total().max(1.0)
    }

    /// 256-bit-vector fraction of the total.
    pub fn vec256_fraction(&self) -> f64 {
        self.vec256 / self.total().max(1.0)
    }
}

/// Computes the dynamic instruction breakdown of an encode compiled for
/// `tier`.
///
/// Per kernel: `samples × scalar_instrs_per_sample` scalar-equivalent
/// operations split into a vectorizable part (divided by the usable lane
/// count) and a scalar residue.
pub fn cycle_breakdown(counters: &KernelCounters, tier: IsaTier) -> CycleBreakdown {
    let mut out = CycleBreakdown::default();
    for k in Kernel::ALL {
        let m = kernel_model(k);
        let work = counters.samples(k) as f64 * m.scalar_instrs_per_sample;
        let scalar_part = work * (1.0 - m.vector_fraction);
        let vec_work = work * m.vector_fraction;
        let lanes = tier.lanes().min(m.max_lanes).max(1);
        out.scalar += scalar_part;
        if lanes <= 1 {
            out.scalar += vec_work;
        } else {
            let vec_instrs = vec_work / f64::from(lanes) * VECTOR_OVERHEAD * tier.op_efficiency();
            if lanes > 16 {
                out.vec256 += vec_instrs;
            } else {
                out.vec128 += vec_instrs;
            }
        }
    }
    out
}

/// One row of the Figure 8 ladder: cycles at each tier normalized to AVX2.
pub fn isa_ladder(counters: &KernelCounters) -> Vec<(IsaTier, CycleBreakdown)> {
    IsaTier::ALL.iter().map(|&t| (t, cycle_breakdown(counters, t))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_counters() -> KernelCounters {
        let mut c = KernelCounters::new();
        // Work shares shaped after a mid-entropy VOD encode (motion search
        // dominates samples; entropy/RDO dominate scalar instructions).
        c.record(Kernel::MotionFullPel, 6_000_000);
        c.record(Kernel::MotionSubPel, 1_500_000);
        c.record(Kernel::MotionComp, 500_000);
        c.record(Kernel::IntraPred, 200_000);
        c.record(Kernel::Fdct, 400_000);
        c.record(Kernel::Idct, 400_000);
        c.record(Kernel::Quant, 400_000);
        c.record(Kernel::Dequant, 400_000);
        c.record(Kernel::Entropy, 250_000);
        c.record(Kernel::Deblock, 300_000);
        c.record(Kernel::ModeDecision, 80_000);
        c.record(Kernel::FrameSetup, 40_000);
        c
    }

    #[test]
    fn wider_isa_never_slower() {
        let c = busy_counters();
        let ladder = isa_ladder(&c);
        for pair in ladder.windows(2) {
            assert!(
                pair[1].1.total() <= pair[0].1.total() + 1.0,
                "{:?} -> {:?}",
                pair[0].0,
                pair[1].0
            );
        }
    }

    #[test]
    fn scalar_instruction_count_is_tier_invariant() {
        // The non-vectorizable residue is identical at every vector tier
        // (Figure 8's constant scalar band). The Scalar tier folds vector
        // work into scalar instructions and is excluded.
        let c = busy_counters();
        let base = cycle_breakdown(&c, IsaTier::Sse);
        for tier in [IsaTier::Sse2, IsaTier::Sse3, IsaTier::Sse4, IsaTier::Avx, IsaTier::Avx2] {
            let b = cycle_breakdown(&c, tier);
            assert!(
                (b.scalar - base.scalar).abs() < 1.0,
                "{tier:?}: scalar band moved ({} vs {})",
                b.scalar,
                base.scalar
            );
        }
    }

    #[test]
    fn gains_saturate_after_sse2() {
        // The paper: "the performance improvement from SSE2 ... is only
        // 15%". Our model must show a large scalar->SSE2 jump and a small
        // SSE2->AVX2 one.
        let c = busy_counters();
        let t = |tier| cycle_breakdown(&c, tier).total();
        let scalar = t(IsaTier::Scalar);
        let sse2 = t(IsaTier::Sse2);
        let avx2 = t(IsaTier::Avx2);
        assert!(scalar / sse2 > 2.0, "scalar/sse2 = {}", scalar / sse2);
        let late_gain = sse2 / avx2;
        assert!(
            (1.02..1.6).contains(&late_gain),
            "sse2/avx2 = {late_gain}, should be a modest gain"
        );
    }

    #[test]
    fn avx2_covers_a_minority_of_cycles() {
        // Figure 7: less than 20% of time in 256-bit instructions, because
        // block geometry caps most kernels at 16 lanes.
        let c = busy_counters();
        let b = cycle_breakdown(&c, IsaTier::Avx2);
        assert!(b.vec256_fraction() < 0.2, "vec256 fraction {}", b.vec256_fraction());
        assert!(b.vec256_fraction() > 0.0);
    }

    #[test]
    fn scalar_fraction_is_roughly_half_at_avx2() {
        // Figure 7: "Scalar code represents close to 60% of the
        // instructions".
        let c = busy_counters();
        let b = cycle_breakdown(&c, IsaTier::Avx2);
        let f = b.scalar_fraction();
        assert!((0.4..0.85).contains(&f), "scalar fraction {f}");
    }

    #[test]
    fn tier_names_unique() {
        let mut names: Vec<_> = IsaTier::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), IsaTier::ALL.len());
    }
}
