//! Set-associative cache simulator with true-LRU replacement.
//!
//! Used three times by the microarchitecture simulation: as the 32 KiB L1
//! instruction cache, the 32 KiB L1 data cache, and the last-level cache,
//! reproducing the cache-behaviour study of Figure 5.

/// A set-associative cache with LRU replacement.
///
/// ```
/// use varch::cache::Cache;
/// let mut c = Cache::new(64, 2, 16); // 2 KiB, 2-way, 16 sets... (64B lines)
/// assert!(!c.access(0x1000));        // cold miss
/// assert!(c.access(0x1000));         // hit
/// assert_eq!(c.misses(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    line_bytes: u64,
    sets: u64,
    ways: usize,
    /// `sets × ways` tags; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// Per-way LRU stamps (higher = more recent).
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` or `sets` is not a power of two, or any
    /// parameter is zero.
    pub fn new(line_bytes: u64, ways: usize, sets: u64) -> Cache {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "cache needs at least one way");
        Cache {
            line_bytes,
            sets,
            ways,
            tags: vec![u64::MAX; (sets as usize) * ways],
            stamps: vec![0; (sets as usize) * ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// A 32 KiB, 8-way, 64 B-line cache (typical L1).
    pub fn l1_32k() -> Cache {
        Cache::new(64, 8, 64)
    }

    /// A 2 MiB, 16-way last-level cache.
    pub fn llc_2m() -> Cache {
        Cache::new(64, 16, 2048)
    }

    /// An 8 MiB, 16-way last-level cache (the i7-6700K's LLC size).
    pub fn llc_8m() -> Cache {
        Cache::new(64, 16, 8192)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.line_bytes * self.sets * self.ways as u64
    }

    /// Accesses one address; returns `true` on hit. Misses allocate.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr / self.line_bytes;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let base = set * self.ways;
        let ways = &mut self.tags[base..base + self.ways];
        if let Some(w) = ways.iter().position(|&t| t == tag) {
            self.stamps[base + w] = self.clock;
            self.hits += 1;
            return true;
        }
        // Miss: evict the LRU way.
        let victim =
            (0..self.ways).min_by_key(|&w| self.stamps[base + w]).expect("at least one way");
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        self.misses += 1;
        false
    }

    /// Accesses every line of the region `[addr, addr + bytes)`; returns
    /// the number of misses.
    pub fn access_region(&mut self, addr: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let first = addr / self.line_bytes;
        let last = (addr + bytes - 1) / self.line_bytes;
        let mut misses = 0;
        for line in first..=last {
            if !self.access(line * self.line_bytes) {
                misses += 1;
            }
        }
        misses
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Resets counters (not contents): useful after a warmup phase.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(64, 4, 16);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set, 2 ways: A, B, then C evicts A (LRU).
        let mut c = Cache::new(64, 2, 1);
        c.access(0x000); // A
        c.access(0x040); // B
        c.access(0x000); // A (refresh)
        c.access(0x080); // C evicts B
        assert!(c.access(0x000), "A must survive");
        assert!(!c.access(0x040), "B must have been evicted");
    }

    #[test]
    fn working_set_within_capacity_has_no_steady_state_misses() {
        let mut c = Cache::l1_32k();
        // 16 KiB working set, swept twice.
        for _ in 0..2 {
            for line in 0..256u64 {
                c.access(line * 64);
            }
        }
        assert_eq!(c.misses(), 256, "only cold misses expected");
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Cache::new(64, 4, 16); // 4 KiB
                                           // 8 KiB streaming sweep, repeated: every access misses (LRU +
                                           // sequential sweep is the pathological case).
        for _ in 0..3 {
            for line in 0..128u64 {
                c.access(line * 64);
            }
        }
        assert!(c.miss_ratio() > 0.9, "ratio {}", c.miss_ratio());
    }

    #[test]
    fn region_access_counts_lines() {
        let mut c = Cache::l1_32k();
        // 132 bytes starting 2 before a line boundary span 4 lines.
        assert_eq!(c.access_region(0x1000 - 2, 132), 4);
        assert_eq!(c.access_region(0x1000 - 2, 132), 0);
        assert_eq!(c.access_region(0x5000, 0), 0);
    }

    #[test]
    fn capacity_formula() {
        assert_eq!(Cache::l1_32k().capacity(), 32 * 1024);
        assert_eq!(Cache::llc_8m().capacity(), 8 * 1024 * 1024);
    }
}
