//! Static microarchitectural model of the encoder's kernels.
//!
//! Each [`Kernel`](vcodec::Kernel) is characterized by the properties that
//! drive the paper's Figures 5–8: instruction-cache footprint (a hot inner
//! loop plus a larger cold region of setup/variant paths), dynamic
//! instruction cost per data sample, how much of that work is
//! vectorizable, and the widest useful SIMD lane count (bounded by block
//! geometry — the paper, Section 5.2: "the width of macroblocks being
//! smaller than the AVX2 vector length").
//!
//! The numbers are calibrated to x264's published profile shape: motion
//! estimation and transforms vectorize heavily; entropy coding and
//! decision logic are strictly sequential and control-dominated ("frame
//! reference search … averages 9% of the time … entropy encoding which
//! averages 10%").

use vcodec::Kernel;

/// Static per-kernel properties.
#[derive(Clone, Copy, Debug)]
pub struct KernelModel {
    /// Bytes of the always-executed hot loop body.
    pub hot_bytes: u64,
    /// Bytes of the cold region (setup, variant paths, unrolled copies).
    pub cold_bytes: u64,
    /// Dynamic instructions per data sample when running scalar code.
    pub scalar_instrs_per_sample: f64,
    /// Fraction of the kernel's work that is vectorizable.
    pub vector_fraction: f64,
    /// Maximum useful SIMD lanes (8-bit elements), bounded by block
    /// geometry.
    pub max_lanes: u32,
}

/// The model for one kernel.
pub fn kernel_model(k: Kernel) -> KernelModel {
    match k {
        Kernel::MotionFullPel => KernelModel {
            hot_bytes: 1_024,
            cold_bytes: 40_960,
            scalar_instrs_per_sample: 3.0,
            vector_fraction: 0.95,
            // AVX2 SAD batches two 16-wide rows per 256-bit op.
            max_lanes: 32,
        },
        Kernel::MotionSubPel => KernelModel {
            hot_bytes: 1_280,
            cold_bytes: 24_576,
            scalar_instrs_per_sample: 4.0,
            vector_fraction: 0.90,
            max_lanes: 16,
        },
        Kernel::MotionComp => KernelModel {
            hot_bytes: 768,
            cold_bytes: 16_384,
            scalar_instrs_per_sample: 2.5,
            vector_fraction: 0.90,
            max_lanes: 16,
        },
        Kernel::IntraPred => KernelModel {
            hot_bytes: 896,
            cold_bytes: 24_576,
            scalar_instrs_per_sample: 2.0,
            vector_fraction: 0.45,
            max_lanes: 8,
        },
        Kernel::Fdct => KernelModel {
            hot_bytes: 512,
            cold_bytes: 8_192,
            scalar_instrs_per_sample: 6.0,
            vector_fraction: 0.90,
            max_lanes: 8,
        },
        Kernel::Idct => KernelModel {
            hot_bytes: 512,
            cold_bytes: 8_192,
            scalar_instrs_per_sample: 6.0,
            vector_fraction: 0.90,
            max_lanes: 8,
        },
        Kernel::Quant => KernelModel {
            hot_bytes: 256,
            cold_bytes: 4_096,
            scalar_instrs_per_sample: 3.0,
            vector_fraction: 0.85,
            max_lanes: 32,
        },
        Kernel::Dequant => KernelModel {
            hot_bytes: 256,
            cold_bytes: 4_096,
            scalar_instrs_per_sample: 2.5,
            vector_fraction: 0.85,
            max_lanes: 32,
        },
        Kernel::Entropy => KernelModel {
            hot_bytes: 1_536,
            cold_bytes: 49_152,
            scalar_instrs_per_sample: 12.0,
            vector_fraction: 0.0,
            max_lanes: 1,
        },
        Kernel::Deblock => KernelModel {
            hot_bytes: 768,
            cold_bytes: 16_384,
            scalar_instrs_per_sample: 1.5,
            vector_fraction: 0.50,
            max_lanes: 8,
        },
        Kernel::ModeDecision => KernelModel {
            hot_bytes: 2_048,
            cold_bytes: 65_536,
            scalar_instrs_per_sample: 20.0,
            vector_fraction: 0.05,
            max_lanes: 1,
        },
        Kernel::FrameSetup => KernelModel {
            hot_bytes: 1_024,
            cold_bytes: 32_768,
            scalar_instrs_per_sample: 8.0,
            vector_fraction: 0.10,
            max_lanes: 1,
        },
    }
}

/// Base address of each kernel's code region in the simulated instruction
/// address space (regions are laid out contiguously with padding).
pub fn kernel_code_base(k: Kernel) -> u64 {
    const CODE_BASE: u64 = 0x40_0000;
    let mut addr = CODE_BASE;
    for other in Kernel::ALL {
        if other == k {
            return addr;
        }
        let m = kernel_model(other);
        addr += (m.hot_bytes + m.cold_bytes).next_multiple_of(4096);
    }
    unreachable!("kernel present in ALL");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_regions_do_not_overlap() {
        let mut regions: Vec<(u64, u64)> = Kernel::ALL
            .iter()
            .map(|&k| {
                let m = kernel_model(k);
                (kernel_code_base(k), m.hot_bytes + m.cold_bytes)
            })
            .collect();
        regions.sort_unstable();
        for pair in regions.windows(2) {
            assert!(pair[0].0 + pair[0].1 <= pair[1].0, "overlap: {pair:?}");
        }
    }

    #[test]
    fn entropy_and_rdo_are_scalar() {
        assert_eq!(kernel_model(Kernel::Entropy).vector_fraction, 0.0);
        assert!(kernel_model(Kernel::ModeDecision).vector_fraction < 0.1);
    }

    #[test]
    fn total_code_footprint_exceeds_l1i() {
        // The paper's icache-pressure mechanism requires the full encoder
        // to be larger than a 32 KiB L1I.
        let total: u64 = Kernel::ALL
            .iter()
            .map(|&k| {
                let m = kernel_model(k);
                m.hot_bytes + m.cold_bytes
            })
            .sum();
        assert!(total > 64 * 1024, "total footprint {total}");
    }

    #[test]
    fn simd_kernels_have_wide_lanes() {
        assert!(kernel_model(Kernel::MotionFullPel).max_lanes >= 16);
        assert!(kernel_model(Kernel::Fdct).max_lanes <= 16, "8x8 rows cap the DCT at 128-bit");
        assert_eq!(kernel_model(Kernel::Entropy).max_lanes, 1);
    }
}
