//! Trace-driven microarchitecture simulation for the vbench reproduction.
//!
//! The paper's Section 5 characterizes how video transcoding exercises a
//! CPU: instruction-cache misses and branch mispredictions *rise* with
//! content entropy while last-level-cache misses per kilo-instruction
//! *fall* (Figure 5); Top-Down analysis shows ~60% of time retiring or
//! core-bound (Figure 6); and SIMD analysis shows a stable ~60% scalar
//! fraction with AVX2 covering under 20% of cycles (Figures 7–8).
//!
//! This crate substitutes for the paper's hardware performance counters:
//! the encoder in `vcodec` streams its real decisions (kernel activity,
//! decision-branch outcomes, frame-buffer accesses) into [`sim::UarchSim`],
//! a [`vcodec::Probe`] built from
//!
//! * [`cache::Cache`] — set-associative LRU caches (L1I, L1D, LLC),
//! * [`branch::Gshare`] — a gshare branch predictor,
//! * [`model`] — static per-kernel code-footprint and instruction-mix
//!   models,
//! * [`simd`] — the ISA-ladder cycle model (scalar … AVX2),
//! * [`topdown`] — Top-Down slot attribution.
//!
//! # Example
//!
//! ```
//! use varch::sim::UarchSim;
//! use vcodec::{encode_with_probe, CodecFamily, EncoderConfig, Preset, RateControl};
//! use vframe::color::{frame_from_fn, Yuv};
//! use vframe::{Resolution, Video};
//!
//! let frames = (0..3)
//!     .map(|t| {
//!         frame_from_fn(Resolution::new(64, 64), |x, y| {
//!             Yuv::new(((x + t) * 7 + y * 3) as u8, 128, 128)
//!         })
//!     })
//!     .collect();
//! let video = Video::new(frames, 30.0);
//! let cfg = EncoderConfig::new(
//!     CodecFamily::Avc,
//!     Preset::Fast,
//!     RateControl::ConstQuality { crf: 26.0 },
//! );
//!
//! let mut sim = UarchSim::default();
//! let _ = encode_with_probe(&video, &cfg, &mut sim);
//! let report = sim.report();
//! assert!(report.instructions > 0.0);
//! assert!((report.topdown.sum() - 1.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod branch;
pub mod cache;
pub mod model;
pub mod sim;
pub mod simd;
pub mod topdown;

pub use sim::{MachineConfig, UarchReport, UarchSim};
pub use simd::{cycle_breakdown, isa_ladder, CycleBreakdown, IsaTier};
pub use topdown::{attribute, TopDown, TopDownInputs};
