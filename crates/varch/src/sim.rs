//! The microarchitecture simulator: a [`Probe`] implementation that replays
//! encoder trace events through cache and branch-predictor simulators.
//!
//! Mechanisms reproducing the paper's Figure 5 trends:
//!
//! * **Instruction cache.** Each kernel owns a code region (hot loop +
//!   cold variant paths, see [`crate::model`]). Every kernel event fetches
//!   the hot loop and one cold chunk whose location is selected by a
//!   rolling hash of recent *decision-branch outcomes* — simple content
//!   takes the same few paths (small I-footprint, no misses), complex
//!   content scatters across variant paths and thrashes the 32 KiB L1I.
//! * **Branch predictor.** The encoder's real decision branches (skip,
//!   mode, coefficient significance, search acceptance) stream through a
//!   gshare predictor; biased streams predict well, content-driven ones do
//!   not.
//! * **Data caches.** Region-granular reads/writes of actual frame-buffer
//!   addresses walk an L1D and an LLC; the data footprint scales with
//!   resolution while the instruction count scales with content
//!   complexity, so LLC misses *per kilo-instruction* fall as entropy
//!   rises.

use crate::branch::Gshare;
use crate::cache::Cache;
use crate::model::{kernel_code_base, kernel_model};
use crate::simd::{cycle_breakdown, IsaTier};
use crate::topdown::{attribute, TopDown, TopDownInputs};
use vcodec::{BranchSite, Kernel, KernelCounters, Probe};

/// Bytes of cold code touched per kernel event. Calibrated so suite-wide
/// I$ MPKI lands in the paper's 0.5–5 range (Figure 5's y-axis).
const COLD_CHUNK: u64 = 1536;

/// Configuration of the simulated machine.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// L1 instruction cache ways (32 KiB total, 64 B lines).
    pub l1i_ways: usize,
    /// L1 data cache ways (32 KiB total).
    pub l1d_ways: usize,
    /// Last-level cache size in bytes.
    pub llc_bytes: u64,
    /// gshare index bits.
    pub branch_bits: u32,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        // Shaped after the paper's Xeon E5-1650v3 measurement machine.
        MachineConfig { l1i_ways: 8, l1d_ways: 8, llc_bytes: 2 * 1024 * 1024, branch_bits: 13 }
    }
}

/// The simulator; implement-once, reuse across an encode via
/// [`vcodec::encode_with_probe`].
#[derive(Debug)]
pub struct UarchSim {
    icache: Cache,
    l1d: Cache,
    llc: Cache,
    predictor: Gshare,
    counters: KernelCounters,
    /// Shift-register window over recent decision outcomes — the
    /// "control-flow path" signature that selects cold code chunks.
    path_state: u64,
    branch_events: u64,
}

impl Default for UarchSim {
    fn default() -> UarchSim {
        UarchSim::new(MachineConfig::default())
    }
}

impl UarchSim {
    /// Creates a simulator for the given machine.
    ///
    /// # Panics
    ///
    /// Panics if `llc_bytes` is not a power of two at least 64 KiB.
    pub fn new(cfg: MachineConfig) -> UarchSim {
        assert!(
            cfg.llc_bytes.is_power_of_two() && cfg.llc_bytes >= 64 * 1024,
            "LLC must be a power-of-two size of at least 64 KiB"
        );
        let llc_sets = cfg.llc_bytes / 64 / 16;
        UarchSim {
            icache: Cache::new(64, cfg.l1i_ways, (32 * 1024 / 64 / cfg.l1i_ways as u64).max(1)),
            l1d: Cache::new(64, cfg.l1d_ways, (32 * 1024 / 64 / cfg.l1d_ways as u64).max(1)),
            llc: Cache::new(64, 16, llc_sets),
            predictor: Gshare::new(cfg.branch_bits),
            counters: KernelCounters::new(),
            path_state: 0x243f_6a88_85a3_08d3,
            branch_events: 0,
        }
    }

    /// Dynamic instruction estimate (AVX2 build) for everything observed.
    pub fn instructions(&self) -> f64 {
        cycle_breakdown(&self.counters, IsaTier::Avx2).total()
    }

    /// Finalizes the simulation into a report.
    ///
    /// # Panics
    ///
    /// Panics if no kernel events were observed.
    pub fn report(&self) -> UarchReport {
        let b = cycle_breakdown(&self.counters, IsaTier::Avx2);
        let instructions = b.total();
        assert!(instructions > 0.0, "no kernel events observed");
        let kilo = instructions / 1000.0;
        let inputs = TopDownInputs {
            instructions,
            icache_misses: self.icache.misses(),
            branch_mispredictions: self.predictor.mispredictions(),
            l1d_misses: self.l1d.misses(),
            llc_misses: self.llc.misses(),
            scalar_instructions: b.scalar,
            vector_instructions: b.vec128 + b.vec256,
        };
        UarchReport {
            instructions,
            icache_mpki: self.icache.misses() as f64 / kilo,
            branch_mpki: self.predictor.mispredictions() as f64 / kilo,
            llc_mpki: self.llc.misses() as f64 / kilo,
            l1d_mpki: self.l1d.misses() as f64 / kilo,
            branch_events: self.branch_events,
            topdown: attribute(&inputs),
            counters: self.counters.clone(),
        }
    }

    /// The work counters accumulated from kernel events.
    pub fn counters(&self) -> &KernelCounters {
        &self.counters
    }
}

impl Probe for UarchSim {
    fn kernel(&mut self, kernel: Kernel, samples: u64) {
        self.counters.record(kernel, samples);
        let m = kernel_model(kernel);
        let base = kernel_code_base(kernel);
        // Hot loop body: fetched on every invocation.
        self.icache.access_region(base, m.hot_bytes);
        // One cold chunk, positioned by the current control-flow path
        // signature: diverse decisions → diverse chunks → I$ pressure.
        if m.cold_bytes > 0 {
            let h = splitmix(self.path_state ^ (kernel.index() as u64) << 32);
            let span = m.cold_bytes.saturating_sub(COLD_CHUNK).max(1);
            let off = (h % span) & !63; // line-aligned
            self.icache.access_region(base + m.hot_bytes + off, COLD_CHUNK.min(m.cold_bytes));
        }
    }

    fn branch(&mut self, site: BranchSite, taken: bool) {
        self.branch_events += 1;
        // Each site gets a distinct PC inside the decision-logic region.
        let pc = 0x40_0000 + (site.index() as u64) * 0x40;
        self.predictor.predict_and_update(pc, taken);
        // Fold the outcome into the path signature. The signature is a
        // *window* over the most recent 16 decisions (a 4-bit shift per
        // event): a monotone decision stream (all skips) yields a constant
        // signature — the same cold code chunk every time, which stays
        // cached — while content-driven decisions scatter it.
        self.path_state =
            (self.path_state << 4) | ((site.index() as u64) << 1 | u64::from(taken)) & 0xf;
    }

    fn mem_read(&mut self, addr: u64, bytes: u64) {
        self.touch(addr, bytes);
    }

    fn mem_write(&mut self, addr: u64, bytes: u64) {
        self.touch(addr, bytes);
    }
}

impl UarchSim {
    fn touch(&mut self, addr: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let first = addr / 64;
        let last = (addr + bytes - 1) / 64;
        for line in first..=last {
            let a = line * 64;
            if !self.l1d.access(a) {
                self.llc.access(a);
            }
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Everything the simulation reports about one encode.
#[derive(Clone, Debug)]
pub struct UarchReport {
    /// Dynamic instructions (AVX2 build estimate).
    pub instructions: f64,
    /// L1I misses per kilo-instruction.
    pub icache_mpki: f64,
    /// Branch mispredictions per kilo-instruction.
    pub branch_mpki: f64,
    /// LLC misses per kilo-instruction.
    pub llc_mpki: f64,
    /// L1D misses per kilo-instruction.
    pub l1d_mpki: f64,
    /// Decision-branch events observed.
    pub branch_events: u64,
    /// Top-Down cycle attribution.
    pub topdown: TopDown,
    /// Kernel work counters (for SIMD analysis).
    pub counters: KernelCounters,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed the sim a synthetic stream mimicking low- or high-complexity
    /// encoding.
    fn drive(diverse: bool) -> UarchReport {
        let mut sim = UarchSim::default();
        let mut x = 12345u64;
        for sbi in 0..4000u64 {
            // Decision branches first (they steer the path state).
            for _ in 0..8 {
                x = splitmix(x);
                let taken = if diverse { x & 1 == 1 } else { sbi % 97 == 0 };
                sim.branch(BranchSite::SkipTaken, taken);
            }
            if diverse {
                // Complex content: many kernels active per superblock.
                sim.kernel(Kernel::MotionFullPel, 4096);
                sim.kernel(Kernel::MotionSubPel, 1024);
                sim.kernel(Kernel::IntraPred, 256);
                sim.kernel(Kernel::Fdct, 256);
                sim.kernel(Kernel::Quant, 256);
                sim.kernel(Kernel::Idct, 256);
                sim.kernel(Kernel::Entropy, 512);
                sim.kernel(Kernel::ModeDecision, 64);
            } else {
                // Simple content: skip path only.
                sim.kernel(Kernel::MotionFullPel, 512);
                sim.kernel(Kernel::ModeDecision, 16);
            }
            // Frame-buffer traffic.
            sim.mem_read(0x1000_0000 + (sbi % 512) * 4096, 1024);
            sim.mem_write(0x3000_0000 + (sbi % 512) * 4096, 1024);
        }
        sim.report()
    }

    #[test]
    fn report_has_sane_ranges() {
        let r = drive(true);
        assert!(r.instructions > 0.0);
        assert!(r.icache_mpki >= 0.0 && r.icache_mpki < 100.0);
        assert!(r.branch_mpki >= 0.0 && r.branch_mpki < 100.0);
        assert!((r.topdown.sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn diverse_control_flow_pressures_the_icache() {
        let simple = drive(false);
        let complex = drive(true);
        assert!(
            complex.icache_mpki > simple.icache_mpki,
            "complex {} vs simple {}",
            complex.icache_mpki,
            simple.icache_mpki
        );
    }

    #[test]
    fn random_branches_mispredict_more() {
        let simple = drive(false);
        let complex = drive(true);
        // Compare raw misprediction *ratio* via mpki × instructions /
        // events to avoid denominator effects.
        let ratio =
            |r: &UarchReport| r.branch_mpki * r.instructions / 1000.0 / r.branch_events as f64;
        assert!(
            ratio(&complex) > ratio(&simple) * 2.0,
            "complex {} vs simple {}",
            ratio(&complex),
            ratio(&simple)
        );
    }

    #[test]
    fn more_compute_per_byte_lowers_llc_mpki() {
        // Same data traffic, more instructions -> lower misses/kilo-instr.
        let simple = drive(false);
        let complex = drive(true);
        assert!(
            complex.llc_mpki < simple.llc_mpki,
            "complex {} vs simple {}",
            complex.llc_mpki,
            simple.llc_mpki
        );
    }

    #[test]
    #[should_panic(expected = "no kernel events")]
    fn empty_sim_report_panics() {
        let _ = UarchSim::default().report();
    }
}
