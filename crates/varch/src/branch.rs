//! Branch predictor simulation (gshare).
//!
//! The encoder's decision branches — mode choices, coefficient
//! significance, search-step acceptance — are the branches whose
//! predictability degrades on complex content, producing the
//! branch-MPKI-vs-entropy trend of Figure 5. A classic gshare predictor
//! (global history XOR PC indexing a table of 2-bit saturating counters)
//! captures exactly that effect: biased or patterned branches predict
//! well, content-dependent coin flips do not.

/// A gshare branch predictor.
///
/// ```
/// use varch::branch::Gshare;
/// let mut p = Gshare::new(12);
/// // A strongly biased branch becomes predictable after warmup.
/// for _ in 0..100 {
///     p.predict_and_update(0x400, true);
/// }
/// let before = p.mispredictions();
/// for _ in 0..100 {
///     p.predict_and_update(0x400, true);
/// }
/// assert_eq!(p.mispredictions(), before);
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    /// 2-bit saturating counters, 0..=3; ≥2 predicts taken.
    table: Vec<u8>,
    index_bits: u32,
    history: u64,
    predictions: u64,
    mispredictions: u64,
}

impl Gshare {
    /// Creates a predictor with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> Gshare {
        assert!((1..=24).contains(&index_bits), "index bits must be 1..=24");
        Gshare {
            table: vec![2; 1 << index_bits], // weakly taken
            index_bits,
            history: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        (((pc >> 2) ^ self.history) & mask) as usize
    }

    /// Predicts the branch at `pc`, then updates with the actual outcome.
    /// Returns `true` if the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted = self.table[idx] >= 2;
        let correct = predicted == taken;
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }
        // Saturating counter update.
        if taken {
            self.table[idx] = (self.table[idx] + 1).min(3);
        } else {
            self.table[idx] = self.table[idx].saturating_sub(1);
        }
        // Global history shift.
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.index_bits) - 1);
        correct
    }

    /// Branches predicted so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Mispredictions so far.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Resets counters (not predictor state).
    pub fn reset_counters(&mut self) {
        self.predictions = 0;
        self.mispredictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_branch_predicts_well() {
        let mut p = Gshare::new(10);
        for i in 0..10_000u64 {
            p.predict_and_update(0x1000, i % 50 != 0); // 98% taken
        }
        assert!(p.miss_ratio() < 0.1, "ratio {}", p.miss_ratio());
    }

    #[test]
    fn alternating_pattern_is_learned() {
        let mut p = Gshare::new(12);
        for i in 0..2_000u64 {
            p.predict_and_update(0x2000, i % 2 == 0);
        }
        p.reset_counters();
        for i in 0..2_000u64 {
            p.predict_and_update(0x2000, i % 2 == 0);
        }
        assert!(p.miss_ratio() < 0.05, "ratio {}", p.miss_ratio());
    }

    #[test]
    fn random_branch_is_unpredictable() {
        let mut p = Gshare::new(12);
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            p.predict_and_update(0x3000, x & 1 == 1);
        }
        assert!(p.miss_ratio() > 0.35, "ratio {}", p.miss_ratio());
    }

    #[test]
    fn distinct_pcs_do_not_destructively_alias_much() {
        let mut p = Gshare::new(14);
        for i in 0..20_000u64 {
            p.predict_and_update(0x1000, true);
            p.predict_and_update(0x2000, false);
            p.predict_and_update(0x3000, i % 2 == 0);
        }
        assert!(p.miss_ratio() < 0.15, "ratio {}", p.miss_ratio());
    }

    #[test]
    #[should_panic(expected = "index bits")]
    fn zero_bits_rejected() {
        let _ = Gshare::new(0);
    }
}
