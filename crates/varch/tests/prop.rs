//! Property-based tests for the cache and branch-predictor simulators.

use proptest::prelude::*;
use std::collections::VecDeque;
use varch::branch::Gshare;
use varch::cache::Cache;

/// Reference model: a fully associative LRU cache as an ordered list —
/// slow but obviously correct for 1-set configurations.
struct RefLru {
    lines: VecDeque<u64>,
    capacity: usize,
}

impl RefLru {
    fn access(&mut self, line: u64) -> bool {
        if let Some(pos) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(pos);
            self.lines.push_front(line);
            true
        } else {
            self.lines.push_front(line);
            if self.lines.len() > self.capacity {
                self.lines.pop_back();
            }
            false
        }
    }
}

proptest! {
    #[test]
    fn single_set_cache_matches_reference_lru(
        ways in 1usize..8,
        accesses in prop::collection::vec(0u64..32, 1..300),
    ) {
        // sets = 1 makes the dut fully associative; compare against the
        // textbook LRU list model.
        let mut dut = Cache::new(64, ways, 1);
        let mut reference = RefLru { lines: VecDeque::new(), capacity: ways };
        for &line in &accesses {
            let hit_dut = dut.access(line * 64);
            let hit_ref = reference.access(line);
            prop_assert_eq!(hit_dut, hit_ref, "divergence on line {}", line);
        }
    }

    #[test]
    fn hits_plus_misses_equals_accesses(
        accesses in prop::collection::vec(any::<u32>(), 1..500),
    ) {
        let mut c = Cache::l1_32k();
        for &a in &accesses {
            c.access(u64::from(a));
        }
        prop_assert_eq!(c.accesses(), accesses.len() as u64);
        prop_assert_eq!(c.hits() + c.misses(), c.accesses());
        prop_assert!((0.0..=1.0).contains(&c.miss_ratio()));
    }

    #[test]
    fn repeat_access_is_always_a_hit(addr in any::<u32>()) {
        let mut c = Cache::l1_32k();
        c.access(u64::from(addr));
        prop_assert!(c.access(u64::from(addr)));
    }

    #[test]
    fn region_misses_bounded_by_line_count(
        addr in 0u64..1_000_000,
        bytes in 1u64..10_000,
    ) {
        let mut c = Cache::llc_2m();
        let misses = c.access_region(addr, bytes);
        let lines = (addr + bytes - 1) / 64 - addr / 64 + 1;
        prop_assert!(misses <= lines);
        // Second sweep of a region that fits: zero misses.
        if bytes < 1_000_000 {
            prop_assert_eq!(c.access_region(addr, bytes), 0);
        }
    }

    #[test]
    fn gshare_counts_are_consistent(
        outcomes in prop::collection::vec((0u64..16, any::<bool>()), 1..500),
        bits in 4u32..16,
    ) {
        let mut p = Gshare::new(bits);
        for &(pc, taken) in &outcomes {
            p.predict_and_update(pc * 4, taken);
        }
        prop_assert_eq!(p.predictions(), outcomes.len() as u64);
        prop_assert!(p.mispredictions() <= p.predictions());
    }

    #[test]
    fn gshare_learns_constant_branches(taken in any::<bool>(), bits in 6u32..14) {
        let mut p = Gshare::new(bits);
        for _ in 0..200 {
            p.predict_and_update(0x1234, taken);
        }
        p.reset_counters();
        for _ in 0..200 {
            p.predict_and_update(0x1234, taken);
        }
        prop_assert_eq!(p.mispredictions(), 0, "constant branch must become perfect");
    }
}
