//! A self-contained property-testing harness with the `proptest` API
//! surface this workspace uses.
//!
//! The build environment resolves dependencies offline, so the workspace
//! carries its own harness instead of the `proptest` crate. The workspace
//! `Cargo.toml` renames this package to `proptest`, so the property tests
//! (`proptest! { fn p(x in 0u8..10) {..} }`) compile unchanged.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case reports its inputs via the panic
//!   message of the failed assertion, but is not minimized;
//! * cases are derived deterministically from the test's name, so runs
//!   are reproducible without a persistence file;
//! * only the strategy combinators the workspace's tests use are
//!   implemented (ranges, `any`, tuples, `prop_map`, `collection::vec`,
//!   `array::uniform3`).

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies.
#[derive(Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// 64 fresh random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform sample from a range.
    pub fn in_range<T, R: rand::SampleRange<T>>(&mut self, r: R) -> T {
        self.0.gen_range(r)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f` (mirrors proptest's `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The output of [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.in_range(self.clone())
    }
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// Uniform samples over the whole domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a vector-length specification.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.in_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.in_range(self.clone())
        }
    }

    /// The output of [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A vector of values from `element`, with a length drawn from `len`
    /// (a fixed `usize` or a range).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::{Strategy, TestRng};

    /// The output of [`uniform3`].
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform3<S>(S);

    /// Three values from the same strategy.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3(element)
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [self.0.generate(rng), self.0.generate(rng), self.0.generate(rng)]
        }
    }
}

/// Harness configuration (the fields the workspace's tests may set;
/// call sites use `..ProptestConfig::default()` as with real proptest).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for API compatibility; this harness does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// Drives one property test: a deterministic RNG stream derived from the
/// test's name, advanced once per case.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
        // FNV-1a over the test name: stable, collision-irrelevant seeding.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner { config, rng: TestRng(SmallRng::seed_from_u64(h)) }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Draws one tuple of inputs from `strategy`.
    pub fn draw<S: Strategy>(&mut self, strategy: &S) -> S::Value {
        strategy.generate(&mut self.rng)
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each function's arguments are drawn from the
/// given strategies for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (
        ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::new(config, stringify!($name));
                let strategy = ( $($strategy,)+ );
                for _ in 0..runner.cases() {
                    let ( $($arg,)+ ) = runner.draw(&strategy);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (u8, u8)> {
        (0u8..10, 0u8..10).prop_map(|(a, b)| (a.min(b), a.max(b)))
    }

    proptest! {
        #[test]
        fn ranges_hold(x in 3u32..17, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_hold(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn mapped_strategy_applies(p in pair()) {
            prop_assert!(p.0 <= p.1);
        }

        #[test]
        fn arrays_have_three(a in prop::array::uniform3(0.0f64..1.0)) {
            prop_assert_eq!(a.len(), 3);
            prop_assert!(a.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

        #[test]
        fn config_override_compiles(b in any::<bool>()) {
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut a = super::TestRunner::new(ProptestConfig::default(), "t");
        let mut b = super::TestRunner::new(ProptestConfig::default(), "t");
        let s = (0u64..1000,);
        assert_eq!(a.draw(&s), b.draw(&s));
    }
}
