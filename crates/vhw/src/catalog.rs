//! The heterogeneous instance catalog: CPU class × encoder × $/hour.
//!
//! The paper's fleet-sizing argument (Section 5.3) assumes a fleet of
//! identical workers; real transcoding clouds instead choose among
//! instance types with very different price/performance — x86 vs
//! Arm-class CPUs, and fixed-function encoders attached over PCIe. This
//! module is the *price list*: each [`InstanceType`] names a CPU class,
//! an encoder kind (software on that CPU, or a fixed-function pipeline
//! with its own [`PipelineModel`]), and a dollar rate. It deliberately
//! carries raw model parameters only — content-aware cost *prediction*
//! lives upstream in `vbench::fleet`, which combines these entries with
//! corpus features.
//!
//! Rates are stylized on-demand prices in arbitrary but
//! internally-consistent units; what the planner consumes is their
//! *ratios*, which follow the public-cloud shape: Arm cores price below
//! x86 at lower per-core throughput, and fixed-function encoders carry
//! an accelerator premium that only pays off when their pipelines stay
//! busy.

use crate::pipeline::PipelineModel;

/// The CPU class an instance is built on.
///
/// The class matters twice: it sets the software-encode throughput of
/// [`EncoderKind::Software`] entries, and it prices the host that feeds
/// a fixed-function pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CpuClass {
    /// A contemporary x86 server core.
    X86,
    /// An Arm-class server core: cheaper per hour, lower per-core
    /// software throughput.
    Arm,
}

impl CpuClass {
    /// Short lower-case label for tables and reports.
    pub fn name(self) -> &'static str {
        match self {
            CpuClass::X86 => "x86",
            CpuClass::Arm => "arm",
        }
    }
}

/// What actually encodes on an instance.
#[derive(Clone, Copy, Debug)]
pub enum EncoderKind {
    /// Software encoding on the instance's CPU; `base_pixels_per_sec` is
    /// the sustained throughput at the reference preset on
    /// reference-complexity content (content and preset scaling are the
    /// predictor's job, not the catalog's).
    Software {
        /// Sustained software throughput at the reference operating
        /// point, in pixels per second.
        base_pixels_per_sec: f64,
    },
    /// A fixed-function encoder pipeline; throughput is content
    /// independent and fully described by the [`PipelineModel`].
    Fixed(PipelineModel),
}

impl EncoderKind {
    /// True for fixed-function entries.
    pub fn is_fixed(&self) -> bool {
        matches!(self, EncoderKind::Fixed(_))
    }
}

/// One purchasable worker flavor: CPU class, encoder, and price.
#[derive(Clone, Copy, Debug)]
pub struct InstanceType {
    /// Stable catalog name (used in plans, reports, and placement maps).
    pub name: &'static str,
    /// Host CPU class.
    pub cpu: CpuClass,
    /// The encoder this instance runs.
    pub encoder: EncoderKind,
    /// On-demand price in dollars per hour.
    pub dollars_per_hour: f64,
}

/// The ordered set of instance types a planner may buy.
///
/// Entry 0 is by convention the *homogeneous baseline*: the x86
/// software worker the original single-speed fleet model assumed.
/// Cost-aware plans are always compared against buying only that entry.
#[derive(Clone, Debug)]
pub struct InstanceCatalog {
    entries: Vec<InstanceType>,
}

impl InstanceCatalog {
    /// Builds a catalog from explicit entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or any price or throughput
    /// parameter is not finite and positive.
    pub fn new(entries: Vec<InstanceType>) -> InstanceCatalog {
        assert!(!entries.is_empty(), "catalog must have at least one entry");
        for e in &entries {
            assert!(
                e.dollars_per_hour.is_finite() && e.dollars_per_hour > 0.0,
                "{}: bad rate {}",
                e.name,
                e.dollars_per_hour
            );
            let ok = match e.encoder {
                EncoderKind::Software { base_pixels_per_sec } => {
                    base_pixels_per_sec.is_finite() && base_pixels_per_sec > 0.0
                }
                EncoderKind::Fixed(m) => {
                    m.pipeline_pixels_per_sec > 0.0
                        && m.per_frame_overhead_secs >= 0.0
                        && m.pcie_bytes_per_sec > 0.0
                }
            };
            assert!(ok, "{}: bad encoder parameters", e.name);
        }
        InstanceCatalog { entries }
    }

    /// The default five-flavor fleet used across the workspace.
    ///
    /// Two software classes (x86 and Arm), two PCIe fixed-function
    /// encoders on x86 hosts (the NVENC- and QSV-class models from
    /// [`crate::HwEncoder`]), and an Arm-hosted VPU with a *distinct*
    /// pipeline shape: a slower pipeline behind a narrower interconnect
    /// with higher per-frame submission cost, at a price between the
    /// bare Arm host and the x86 accelerators.
    pub fn default_fleet() -> InstanceCatalog {
        InstanceCatalog::new(vec![
            InstanceType {
                name: "x86-sw",
                cpu: CpuClass::X86,
                encoder: EncoderKind::Software { base_pixels_per_sec: 6.0e6 },
                dollars_per_hour: 0.17,
            },
            InstanceType {
                name: "arm-sw",
                cpu: CpuClass::Arm,
                encoder: EncoderKind::Software { base_pixels_per_sec: 4.2e6 },
                dollars_per_hour: 0.115,
            },
            InstanceType {
                name: "x86-nvenc",
                cpu: CpuClass::X86,
                encoder: EncoderKind::Fixed(PipelineModel {
                    pipeline_pixels_per_sec: 450e6,
                    per_frame_overhead_secs: 0.9e-3,
                    pcie_bytes_per_sec: 8e9,
                }),
                dollars_per_hour: 0.526,
            },
            InstanceType {
                name: "x86-qsv",
                cpu: CpuClass::X86,
                encoder: EncoderKind::Fixed(PipelineModel {
                    pipeline_pixels_per_sec: 600e6,
                    per_frame_overhead_secs: 0.7e-3,
                    pcie_bytes_per_sec: 16e9,
                }),
                dollars_per_hour: 0.30,
            },
            InstanceType {
                name: "arm-vpu",
                cpu: CpuClass::Arm,
                encoder: EncoderKind::Fixed(PipelineModel {
                    pipeline_pixels_per_sec: 300e6,
                    per_frame_overhead_secs: 1.2e-3,
                    pcie_bytes_per_sec: 4e9,
                }),
                dollars_per_hour: 0.20,
            },
        ])
    }

    /// The homogeneous-baseline entry (always index 0).
    pub fn baseline(&self) -> &InstanceType {
        &self.entries[0]
    }

    /// All entries, in catalog order.
    pub fn entries(&self) -> &[InstanceType] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false: [`InstanceCatalog::new`] rejects empty catalogs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks an entry up by its stable name.
    pub fn by_name(&self, name: &str) -> Option<&InstanceType> {
        self.entries.iter().find(|e| e.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fleet_shape() {
        let cat = InstanceCatalog::default_fleet();
        assert_eq!(cat.len(), 5);
        assert!(!cat.is_empty());
        // Entry 0 is the homogeneous x86 software baseline.
        assert_eq!(cat.baseline().name, "x86-sw");
        assert_eq!(cat.baseline().cpu, CpuClass::X86);
        assert!(!cat.baseline().encoder.is_fixed());
        // Exactly one Arm-hosted fixed-function entry, with a pipeline
        // distinct from both x86 accelerators.
        let vpu = cat.by_name("arm-vpu").expect("arm-vpu");
        assert_eq!(vpu.cpu, CpuClass::Arm);
        let EncoderKind::Fixed(vpu_model) = vpu.encoder else {
            panic!("arm-vpu must be fixed-function");
        };
        for other in ["x86-nvenc", "x86-qsv"] {
            let EncoderKind::Fixed(m) = cat.by_name(other).expect(other).encoder else {
                panic!("{other} must be fixed-function");
            };
            assert_ne!(m.pipeline_pixels_per_sec, vpu_model.pipeline_pixels_per_sec);
            assert_ne!(m.pcie_bytes_per_sec, vpu_model.pcie_bytes_per_sec);
        }
    }

    #[test]
    fn arm_prices_below_x86_software() {
        let cat = InstanceCatalog::default_fleet();
        let x86 = cat.by_name("x86-sw").unwrap();
        let arm = cat.by_name("arm-sw").unwrap();
        assert!(arm.dollars_per_hour < x86.dollars_per_hour);
        let (
            EncoderKind::Software { base_pixels_per_sec: xs },
            EncoderKind::Software { base_pixels_per_sec: ar },
        ) = (x86.encoder, arm.encoder)
        else {
            panic!("software entries");
        };
        assert!(ar < xs, "arm per-core throughput below x86");
        // ...but better pixels per dollar: that asymmetry is what makes
        // the cost plane interesting.
        assert!(ar / arm.dollars_per_hour > xs / x86.dollars_per_hour * 0.8);
    }

    #[test]
    fn lookup_by_name() {
        let cat = InstanceCatalog::default_fleet();
        assert!(cat.by_name("x86-qsv").is_some());
        assert!(cat.by_name("riscv-sw").is_none());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_catalog_rejected() {
        InstanceCatalog::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "bad rate")]
    fn non_positive_rate_rejected() {
        InstanceCatalog::new(vec![InstanceType {
            name: "free-lunch",
            cpu: CpuClass::X86,
            encoder: EncoderKind::Software { base_pixels_per_sec: 1e6 },
            dollars_per_hour: 0.0,
        }]);
    }
}
