//! Bitrate bisection against a quality target.
//!
//! The paper's GPU methodology (Section 5.3): "varied the target bitrate
//! using a bisection algorithm until results satisfy the quality
//! constraints by a small margin". Quality is monotone in bitrate, so
//! bisection converges to the smallest bitrate meeting the target.

/// Outcome of a bisection search.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BisectResult {
    /// Smallest bitrate (bits/s) found that met the quality target.
    pub bitrate_bps: u64,
    /// Quality achieved at that bitrate (dB).
    pub quality_db: f64,
    /// Probes performed.
    pub probes: u32,
}

/// Finds the smallest bitrate in `[lo_bps, hi_bps]` whose encode meets
/// `target_db`, probing with `encode_at` (which returns achieved quality in
/// dB). Returns `None` if even `hi_bps` misses the target.
///
/// `encode_at` is invoked O(`iters`) times; pass the encoder closure by
/// mutable reference if it accumulates statistics.
///
/// # Panics
///
/// Panics if `lo_bps >= hi_bps` or `iters` is zero.
pub fn bisect_bitrate<F>(
    lo_bps: u64,
    hi_bps: u64,
    target_db: f64,
    iters: u32,
    mut encode_at: F,
) -> Option<BisectResult>
where
    F: FnMut(u64) -> f64,
{
    assert!(lo_bps < hi_bps, "bisection range is empty");
    assert!(iters > 0, "need at least one iteration");
    let mut probes = 0u32;
    let q_hi = encode_at(hi_bps);
    probes += 1;
    if q_hi < target_db {
        return None;
    }
    let mut best = (hi_bps, q_hi);
    let (mut lo, mut hi) = (lo_bps, hi_bps);
    for _ in 0..iters {
        if hi - lo <= 1 {
            break;
        }
        let mid = lo + (hi - lo) / 2;
        let q = encode_at(mid);
        probes += 1;
        if q >= target_db {
            best = (mid, q);
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(BisectResult { bitrate_bps: best.0, quality_db: best.1, probes })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic monotone quality curve: q = 20 + 8·log2(bps / 1e5).
    fn curve(bps: u64) -> f64 {
        20.0 + 8.0 * (bps as f64 / 1e5).log2()
    }

    #[test]
    fn finds_minimal_bitrate_meeting_target() {
        let res = bisect_bitrate(100_000, 100_000_000, 40.0, 40, curve).expect("feasible");
        assert!(res.quality_db >= 40.0);
        // One step below must miss the target.
        assert!(curve(res.bitrate_bps - res.bitrate_bps / 100) < 40.0 + 1.0);
        // Analytic answer: bps = 1e5 * 2^(20/8) ≈ 566k; bisection gets close.
        let analytic = 1e5 * (20.0f64 / 8.0).exp2();
        let ratio = res.bitrate_bps as f64 / analytic;
        assert!((0.99..1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn infeasible_target_returns_none() {
        assert!(bisect_bitrate(1_000, 2_000, 99.0, 20, curve).is_none());
    }

    #[test]
    fn probe_count_is_logarithmic() {
        let res = bisect_bitrate(1_000, 1_000_000_000, 35.0, 60, curve).expect("feasible");
        assert!(res.probes <= 62, "{} probes", res.probes);
    }

    #[test]
    #[should_panic(expected = "range is empty")]
    fn inverted_range_rejected() {
        let _ = bisect_bitrate(10, 10, 30.0, 5, curve);
    }
}
