//! Fixed-function encoder pipeline throughput model.
//!
//! Hardware encoders process macroblock rows through parallel
//! fixed-function stages; their throughput is essentially *content
//! independent* — unlike software, which runs longer on complex video.
//! What limits them at low resolutions is per-frame overhead (driver
//! submissions, pipeline drain) and the PCIe transfer of raw frames: the
//! paper observes "higher speed improvements for higher resolution videos,
//! since they better amortize the data transfer overheads" (Section 5.3).

use vframe::Video;

/// Throughput/overhead parameters of one hardware encoder.
#[derive(Clone, Copy, Debug)]
pub struct PipelineModel {
    /// Steady-state pixel throughput of the encode pipeline (pixels/s).
    pub pipeline_pixels_per_sec: f64,
    /// Fixed overhead per frame: driver submission, pipeline fill/drain.
    pub per_frame_overhead_secs: f64,
    /// Effective host-to-device bandwidth for raw frames (bytes/s).
    pub pcie_bytes_per_sec: f64,
}

/// Wall-clock seconds a hardware encode spends in each pipeline stage.
///
/// The three terms of the model, reported separately so callers (the
/// engine layer, experiment tables) can show *where* hardware time goes:
/// at low resolutions submission and transfer dominate, which is exactly
/// why the paper sees better hardware speedups at higher resolutions.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageSeconds {
    /// Per-frame driver submission and pipeline fill/drain overhead.
    pub submission: f64,
    /// Host-to-device transfer of the raw frames over PCIe.
    pub transfer: f64,
    /// Steady-state fixed-function encode time.
    pub pipeline: f64,
}

impl StageSeconds {
    /// Total wall-clock seconds across all stages.
    pub fn total(&self) -> f64 {
        self.submission + self.transfer + self.pipeline
    }
}

impl PipelineModel {
    /// Per-stage wall-clock breakdown for `video`.
    ///
    /// Raw 4:2:0 frames are 1.5 bytes/pixel; transfer overlaps poorly with
    /// the first pipeline stages, so it is charged in full (a conservative,
    /// simple model).
    pub fn stage_seconds(&self, video: &Video) -> StageSeconds {
        self.stage_seconds_for(video.resolution().pixels(), video.len() as u64)
    }

    /// [`Self::stage_seconds`] from source metadata alone — the frame
    /// size in pixels and the frame count — for planners that must price
    /// an encode before any clip is materialized. Same arithmetic, so a
    /// predicted hardware encode time matches the modeled one exactly.
    pub fn stage_seconds_for(&self, pixels_per_frame: u64, frames: u64) -> StageSeconds {
        let pixels = (pixels_per_frame * frames) as f64;
        let raw_bytes = pixels * 1.5;
        StageSeconds {
            submission: frames as f64 * self.per_frame_overhead_secs,
            transfer: raw_bytes / self.pcie_bytes_per_sec,
            pipeline: pixels / self.pipeline_pixels_per_sec,
        }
    }

    /// Wall-clock seconds the pipeline needs for `video`.
    pub fn encode_seconds(&self, video: &Video) -> f64 {
        self.stage_seconds(video).total()
    }

    /// Modeled throughput in pixels per second for `video`.
    pub fn pixels_per_second(&self, video: &Video) -> f64 {
        video.total_pixels() as f64 / self.encode_seconds(video)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vframe::{Frame, Resolution};

    fn clip(res: Resolution, frames: usize) -> Video {
        Video::new(vec![Frame::black(res); frames], 30.0)
    }

    fn model() -> PipelineModel {
        PipelineModel {
            pipeline_pixels_per_sec: 500e6,
            per_frame_overhead_secs: 1.0e-3,
            pcie_bytes_per_sec: 8e9,
        }
    }

    #[test]
    fn throughput_grows_with_resolution() {
        let m = model();
        let small = m.pixels_per_second(&clip(Resolution::new(640, 360), 30));
        let large = m.pixels_per_second(&clip(Resolution::new(3840, 2160), 30));
        assert!(large > small * 2.5, "large {large} vs small {small}");
    }

    #[test]
    fn throughput_saturates_below_pipeline_peak() {
        let m = model();
        let huge = m.pixels_per_second(&clip(Resolution::new(3840, 2160), 120));
        assert!(huge < m.pipeline_pixels_per_sec);
        assert!(huge > m.pipeline_pixels_per_sec * 0.3);
    }

    #[test]
    fn metadata_variant_matches_video_variant_exactly() {
        let m = model();
        let res = Resolution::new(1280, 720);
        let v = clip(res, 48);
        let from_video = m.stage_seconds(&v);
        let from_meta = m.stage_seconds_for(res.pixels(), 48);
        assert_eq!(from_video, from_meta);
    }

    #[test]
    fn per_frame_overhead_dominates_tiny_frames() {
        let m = model();
        let v = clip(Resolution::new(64, 64), 100);
        let t = m.encode_seconds(&v);
        // 100 frames x 1ms >= 0.1 s dominates the microscopic pixel time.
        assert!(t >= 0.1);
        assert!(t < 0.11);
    }
}
