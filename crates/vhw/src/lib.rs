//! Hardware video-encoder models for the vbench reproduction.
//!
//! The paper evaluates two fixed-function encoders — NVIDIA NVENC (GTX
//! 1060) and Intel Quick Sync Video (i7-6700K) — and finds them much
//! faster than software but unable to match its compression: "hardware
//! transcoders need to be selective about which compression tools to
//! implement, in order to limit area and power" (Section 5.3).
//!
//! The model in this crate splits the two halves of that behaviour:
//!
//! * **Bitrate and quality are real**: a hardware encode runs the actual
//!   `vcodec` encoder with the *restricted tool set* an ASIC implements —
//!   small pattern search, limited sub-pel, no SATD refinement, no
//!   partition RDO. Compression losses therefore emerge mechanistically
//!   from missing tools, exactly the paper's explanation.
//! * **Speed is modelled**: a fixed-function pipeline is content
//!   independent; [`pipeline::PipelineModel`] charges steady-state
//!   throughput plus per-frame and PCIe overheads, giving the
//!   resolution-dependent speedups of Table 3.
//!
//! [`bisect::bisect_bitrate`] reproduces the paper's tuning methodology:
//! lower the target bitrate until quality constraints are met "by a small
//! margin".
//!
//! # Example
//!
//! ```
//! use vframe::color::{frame_from_fn, Yuv};
//! use vframe::{Resolution, Video};
//! use vhw::{HwEncoder, HwVendor};
//!
//! let frames = (0..4)
//!     .map(|t| {
//!         frame_from_fn(Resolution::new(64, 64), |x, y| {
//!             Yuv::new(((x + t) * 5 + y) as u8, 128, 128)
//!         })
//!     })
//!     .collect();
//! let video = Video::new(frames, 30.0);
//! let out = HwEncoder::new(HwVendor::Nvenc).encode_bitrate(&video, 400_000);
//! assert!(out.speed_pixels_per_sec > 1e6, "hardware is fast");
//! assert!(!out.output.bytes.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bisect;
pub mod catalog;
pub mod pipeline;

pub use bisect::{bisect_bitrate, BisectResult};
pub use catalog::{CpuClass, EncoderKind, InstanceCatalog, InstanceType};
pub use pipeline::{PipelineModel, StageSeconds};

use vcodec::{encode, CodecFamily, EncodeOutput, EncoderConfig, Preset, RateControl};
use vframe::metrics::psnr_video;
use vframe::Video;

/// The two hardware encoders the paper measures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HwVendor {
    /// NVIDIA NVENC class (discrete GPU block).
    Nvenc,
    /// Intel Quick Sync Video class (integrated GPU block).
    Qsv,
}

impl HwVendor {
    /// Both vendors.
    pub const ALL: [HwVendor; 2] = [HwVendor::Nvenc, HwVendor::Qsv];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            HwVendor::Nvenc => "NVENC",
            HwVendor::Qsv => "QSV",
        }
    }
}

impl std::fmt::Display for HwVendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of a hardware encode: the real restricted-tool bitstream plus
/// the pipeline-modelled speed.
#[derive(Clone, Debug)]
pub struct HwEncodeResult {
    /// The underlying software-encode output (bitstream, reconstruction,
    /// work statistics) produced with the hardware tool set.
    pub output: EncodeOutput,
    /// Modelled hardware throughput in pixels per second.
    pub speed_pixels_per_sec: f64,
    /// Where the modelled wall-clock time goes: submission, PCIe
    /// transfer, and steady-state pipeline seconds.
    pub stages: pipeline::StageSeconds,
}

impl HwEncodeResult {
    /// Bitrate of the produced stream in bits/s.
    pub fn bitrate_bps(&self, duration_secs: f64) -> f64 {
        self.output.bitrate_bps(duration_secs)
    }
}

/// A hardware encoder model.
#[derive(Clone, Copy, Debug)]
pub struct HwEncoder {
    vendor: HwVendor,
    pipeline: PipelineModel,
}

impl HwEncoder {
    /// Creates the model for a vendor with its published-shape parameters.
    pub fn new(vendor: HwVendor) -> HwEncoder {
        let pipeline = match vendor {
            // QSV clocks a somewhat faster pipeline in the paper's results
            // (its speed ratios beat NVENC's across Table 3).
            HwVendor::Nvenc => PipelineModel {
                pipeline_pixels_per_sec: 450e6,
                per_frame_overhead_secs: 0.9e-3,
                pcie_bytes_per_sec: 8e9,
            },
            HwVendor::Qsv => PipelineModel {
                pipeline_pixels_per_sec: 600e6,
                per_frame_overhead_secs: 0.7e-3,
                // Integrated: shares the ring bus, no discrete PCIe hop.
                pcie_bytes_per_sec: 16e9,
            },
        };
        HwEncoder { vendor, pipeline }
    }

    /// The vendor this model represents.
    pub fn vendor(&self) -> HwVendor {
        self.vendor
    }

    /// The pipeline speed model.
    pub fn pipeline(&self) -> &PipelineModel {
        &self.pipeline
    }

    /// The restricted tool set this ASIC implements, expressed as an
    /// encoder configuration: AVC-class tools with a mid-size pattern
    /// search, no SATD refinement, no partition RDO, single-pass rate
    /// control only. This sits *between* the software presets: better than
    /// the speed-constrained Live references (hence the hardware wins of
    /// Table 4) but well short of the two-pass Medium/VerySlow VOD and
    /// Popular references (hence B < 1 in Table 3 and zero valid Popular
    /// transcodes).
    pub fn tool_config(&self, rate: RateControl) -> EncoderConfig {
        let preset = match self.vendor {
            HwVendor::Nvenc => Preset::Fast,
            HwVendor::Qsv => Preset::Fast,
        };
        EncoderConfig::new(CodecFamily::Avc, preset, rate)
    }

    /// Encodes at a fixed single-pass bitrate (the hardware rate-control
    /// mode the paper's experiments use).
    pub fn encode_bitrate(&self, video: &Video, bps: u64) -> HwEncodeResult {
        let cfg = self.tool_config(RateControl::Bitrate { bps });
        let output = encode(video, &cfg);
        HwEncodeResult {
            output,
            speed_pixels_per_sec: self.pipeline.pixels_per_second(video),
            stages: self.pipeline.stage_seconds(video),
        }
    }

    /// Encodes at constant quality (used for reference experiments).
    pub fn encode_quality(&self, video: &Video, crf: f64) -> HwEncodeResult {
        let cfg = self.tool_config(RateControl::ConstQuality { crf });
        let output = encode(video, &cfg);
        HwEncodeResult {
            output,
            speed_pixels_per_sec: self.pipeline.pixels_per_second(video),
            stages: self.pipeline.stage_seconds(video),
        }
    }

    /// The paper's tuning loop: bisect the target bitrate until the encode
    /// meets `target_db` YCbCr PSNR by a small margin. Returns the final
    /// encode at the chosen bitrate, or `None` if the tool set cannot
    /// reach the target within `[lo_bps, hi_bps]`.
    pub fn encode_to_quality_target(
        &self,
        video: &Video,
        target_db: f64,
        lo_bps: u64,
        hi_bps: u64,
    ) -> Option<HwEncodeResult> {
        self.encode_to_quality_target_with_rate(video, target_db, lo_bps, hi_bps).map(|(r, _)| r)
    }

    /// Like [`HwEncoder::encode_to_quality_target`], but also reports the
    /// bitrate the bisection settled on (the rate the returned encode
    /// used) — the transcode engine records it as the chosen operating
    /// point.
    pub fn encode_to_quality_target_with_rate(
        &self,
        video: &Video,
        target_db: f64,
        lo_bps: u64,
        hi_bps: u64,
    ) -> Option<(HwEncodeResult, u64)> {
        let found = bisect_bitrate(lo_bps, hi_bps, target_db, 12, |bps| {
            let out = self.encode_bitrate(video, bps);
            psnr_video(video, &out.output.recon)
        })?;
        Some((self.encode_bitrate(video, found.bitrate_bps), found.bitrate_bps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vframe::color::{frame_from_fn, Yuv};
    use vframe::Resolution;

    fn clip(frames: usize) -> Video {
        let res = Resolution::new(64, 64);
        let fs = (0..frames)
            .map(|t| {
                frame_from_fn(res, |x, y| {
                    Yuv::new(((x * 3 + y * 2 + 5 * t as u32) % 256) as u8, 128, 128)
                })
            })
            .collect();
        Video::new(fs, 30.0)
    }

    #[test]
    fn hardware_speed_is_content_independent() {
        let hw = HwEncoder::new(HwVendor::Nvenc);
        let a = hw.encode_bitrate(&clip(5), 200_000);
        let b = hw.encode_bitrate(&clip(5), 2_000_000);
        assert_eq!(a.speed_pixels_per_sec, b.speed_pixels_per_sec);
    }

    #[test]
    fn qsv_pipeline_is_faster_than_nvenc() {
        let v = clip(5);
        let n = HwEncoder::new(HwVendor::Nvenc).pipeline().pixels_per_second(&v);
        let q = HwEncoder::new(HwVendor::Qsv).pipeline().pixels_per_second(&v);
        assert!(q > n);
    }

    #[test]
    fn restricted_tools_decode_and_reconstruct() {
        let v = clip(4);
        let out = HwEncoder::new(HwVendor::Qsv).encode_bitrate(&v, 500_000);
        let decoded = vcodec::decode(&out.output.bytes).expect("decodable stream");
        assert_eq!(decoded.frame(2), out.output.recon.frame(2));
    }

    #[test]
    fn bisection_meets_quality_target() {
        let v = clip(4);
        let hw = HwEncoder::new(HwVendor::Nvenc);
        let target = 34.0;
        let res =
            hw.encode_to_quality_target(&v, target, 20_000, 40_000_000).expect("target reachable");
        let q = psnr_video(&v, &res.output.recon);
        assert!(q >= target - 0.1, "achieved {q} < target {target}");
    }

    #[test]
    fn impossible_quality_target_is_reported() {
        let v = clip(3);
        let hw = HwEncoder::new(HwVendor::Nvenc);
        // 99 dB at a starved ceiling cannot be met.
        assert!(hw.encode_to_quality_target(&v, 99.0, 1_000, 50_000).is_none());
    }

    #[test]
    fn vendor_names() {
        assert_eq!(HwVendor::Nvenc.to_string(), "NVENC");
        assert_eq!(HwVendor::Qsv.name(), "QSV");
    }
}
