//! A self-contained deterministic PRNG with the `rand`-crate API surface
//! this workspace uses.
//!
//! The build environment resolves dependencies offline, so the workspace
//! carries its own pseudo-random substrate instead of the `rand` crate.
//! The workspace `Cargo.toml` renames this package to `rand`, so call
//! sites (`use rand::rngs::SmallRng`, `rng.gen_range(..)`) compile
//! unchanged.
//!
//! [`rngs::SmallRng`] is xoshiro256++ seeded through SplitMix64 — the
//! same generator `rand 0.8` uses for its `SmallRng` on 64-bit targets —
//! and the range samplers reproduce `rand 0.8`'s uniform-sampling
//! algorithms bit for bit (upper-half 32-bit output, widening-multiply
//! with rejection zones, the `[1, 2)` mantissa method for floats). The
//! synthetic scenes, corpus model, and fleet simulator therefore see the
//! exact sequences they were calibrated against. Sequences are
//! deterministic per seed and stable across platforms and releases of
//! this workspace.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core pseudo-random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic; the full
    /// state is derived via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive; integer or
    /// `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial: `true` with probability `p`, reproducing
    /// `rand 0.8`'s `gen_bool` exactly (probability quantized to a
    /// 64-bit fixed-point threshold against one raw draw; `p >= 1`
    /// returns `true` without consuming the stream).
    ///
    /// # Panics
    ///
    /// Panics if `p` is negative or NaN.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(p >= 0.0, "gen_bool probability must be in [0, 1], got {p}");
        if p >= 1.0 {
            return true;
        }
        // `rand 0.8` Bernoulli::new: p_int = p * 2^64, compared against
        // one full-width draw.
        let scale = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * scale) as u64;
        self.next_u64() < p_int
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// 32-bit output, taken from the upper half of the 64-bit stream like
/// `rand 0.8`'s xoshiro256++ does (the low bits have linear
/// dependencies).
fn next32<R: RngCore>(rng: &mut R) -> u32 {
    (rng.next_u64() >> 32) as u32
}

fn next64<R: RngCore>(rng: &mut R) -> u64 {
    rng.next_u64()
}

fn wmul32(a: u32, b: u32) -> (u32, u32) {
    let t = u64::from(a) * u64::from(b);
    ((t >> 32) as u32, t as u32)
}

fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let t = u128::from(a) * u128::from(b);
    ((t >> 64) as u64, t as u64)
}

// Integer uniform sampling, matching `rand 0.8`'s
// `UniformInt::sample_single{,_inclusive}` exactly: widening multiply of
// a draw at the sampling width (`u32` for sub-32-bit and 32-bit types,
// `u64` for the rest) against the range, rejecting draws whose low half
// falls past the unbiased zone. The zone uses the modulus formula for
// 8/16-bit types and the leading-zeros approximation for wider ones,
// exactly as `rand 0.8` chooses.
macro_rules! impl_int_ranges {
    ($($t:ty => ($unsigned:ty, $u_large:ty, $gen:path, $wmul:path)),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let range =
                    (self.end as $unsigned).wrapping_sub(self.start as $unsigned) as $u_large;
                let zone = if (<$unsigned>::MAX as $u_large) <= (u16::MAX as $u_large) {
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = $gen(rng);
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $t);
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo_b, hi_b) = (*self.start(), *self.end());
                assert!(lo_b <= hi_b, "empty range");
                let range = (hi_b as $unsigned)
                    .wrapping_sub(lo_b as $unsigned)
                    .wrapping_add(1) as $u_large;
                if range == 0 {
                    // The range covers the whole sampling width.
                    return $gen(rng) as $t;
                }
                let zone = if (<$unsigned>::MAX as $u_large) <= (u16::MAX as $u_large) {
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = $gen(rng);
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return lo_b.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

impl_int_ranges!(
    u8 => (u8, u32, next32, wmul32),
    u16 => (u16, u32, next32, wmul32),
    u32 => (u32, u32, next32, wmul32),
    u64 => (u64, u64, next64, wmul64),
    usize => (usize, u64, next64, wmul64),
    i8 => (u8, u32, next32, wmul32),
    i16 => (u16, u32, next32, wmul32),
    i32 => (u32, u32, next32, wmul32),
    i64 => (u64, u64, next64, wmul64),
    isize => (u64, u64, next64, wmul64),
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // `rand 0.8`'s `UniformFloat::sample_single`: 52 mantissa bits
        // give a uniform value in [1, 2), scaled and shifted into the
        // range; draws that round onto the open upper bound are
        // rejected.
        let scale = self.end - self.start;
        loop {
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let res = value1_2 * scale + (self.start - scale);
            if res < self.end {
                return res;
            }
        }
    }
}

/// The generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++: the small, fast, high-quality generator `rand 0.8`
    /// uses for `SmallRng` on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion of the seed into the full state, per
            // the xoshiro reference implementation's recommendation.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Shared base-process samplers for the workspace's arrival and workload
/// models.
///
/// The service layer's arrival generator and the fleet simulator both
/// build on the same three primitives — exponential inter-arrival gaps,
/// standard-normal draws, and deterministic per-index substreams — and
/// each used to carry a private copy. Centralizing them here keeps the
/// draw formulas (and therefore every calibrated byte-exact replay)
/// identical across layers: a gap sampled through [`exp_gap`] consumes
/// exactly one `gen_range(0.0..1.0)` draw, [`standard_normal`] exactly
/// two, and [`substream_seed`] consumes nothing.
pub mod process {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    /// One unit-rate exponential inter-arrival gap: `-ln(1 - U)` for a
    /// single uniform draw `U ∈ [0, 1)`. Scale by `1 / rate` for a
    /// Poisson process of the given rate. This is the exact draw formula
    /// the service arrival generator was calibrated with, so routing any
    /// layer through it preserves byte-exact replays.
    pub fn exp_gap<R: RngCore>(rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        -(1.0 - u).ln()
    }

    /// One standard-normal draw via the Box–Muller transform. Always
    /// consumes exactly two uniform draws, so interleaved consumers stay
    /// aligned on the stream.
    pub fn standard_normal<R: RngCore>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// One unit-mean log-normal draw with log-space standard deviation
    /// `sigma`: `exp(sigma · Z − sigma² / 2)`. The `−sigma²/2` shift
    /// makes the expectation exactly 1, so callers multiply by their own
    /// mean without re-deriving the correction.
    pub fn log_normal_unit_mean<R: RngCore>(rng: &mut R, sigma: f64) -> f64 {
        (sigma * standard_normal(rng) - 0.5 * sigma * sigma).exp()
    }

    /// The per-index substream seed used by every per-item attribute
    /// stream in the workspace: `seed ^ (index + 1) · φ64` (the 64-bit
    /// golden-ratio constant). Independent of how many draws other
    /// indices consumed, so per-item attributes replay bit-exactly at
    /// any worker count or evaluation order.
    pub fn substream_seed(seed: u64, index: u64) -> u64 {
        seed ^ (index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// A fresh generator on the [`substream_seed`] for `index`.
    pub fn substream(seed: u64, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(substream_seed(seed, index))
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{process, Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..32).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..32).map(|_| b.gen_range(0.0..1.0)).collect();
        let zs: Vec<f64> = (0..32).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(40..220);
            assert!((40..220).contains(&v));
            let w: i16 = rng.gen_range(-8i16..=8);
            assert!((-8..=8).contains(&w));
            let f: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let u: usize = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn mean_is_roughly_centred() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn full_u64_range_does_not_panic() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    fn gen_bool_tracks_its_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.2)).count();
        let rate = hits as f64 / f64::from(n);
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
        // Degenerate probabilities are exact; p = 1 draws nothing.
        let before = rng.clone().next_u64();
        assert!(rng.gen_bool(1.0));
        assert_eq!(rng.next_u64(), before, "p >= 1 must not consume the stream");
        assert!(!SmallRng::seed_from_u64(1).gen_bool(0.0));
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn gen_bool_rejects_negative_probability() {
        SmallRng::seed_from_u64(1).gen_bool(-0.1);
    }

    #[test]
    fn exp_gap_matches_inline_formula_and_mean() {
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        for _ in 0..64 {
            let u: f64 = b.gen_range(0.0..1.0);
            assert_eq!(process::exp_gap(&mut a).to_bits(), (-(1.0 - u).ln()).to_bits());
        }
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| process::exp_gap(&mut a)).sum::<f64>() / f64::from(n);
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| process::standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|z| (z - mean) * (z - mean)).sum::<f64>() / draws.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn log_normal_unit_mean_has_unit_mean() {
        for &sigma in &[0.25, 0.8, 1.5] {
            let mut rng = SmallRng::seed_from_u64(17);
            let n = 400_000;
            let mean = (0..n).map(|_| process::log_normal_unit_mean(&mut rng, sigma)).sum::<f64>()
                / f64::from(n);
            assert!((mean - 1.0).abs() < 0.05, "sigma {sigma}: mean {mean}");
        }
    }

    #[test]
    fn substreams_are_independent_of_sibling_consumption() {
        // The substream for index 5 is a pure function of (seed, 5) —
        // it cannot depend on draws taken from other substreams.
        let mut direct = process::substream(42, 5);
        let mut other = process::substream(42, 4);
        let _ = other.gen_range(0.0..1.0);
        let mut again = process::substream(42, 5);
        for _ in 0..16 {
            assert_eq!(direct.next_u64(), again.next_u64());
        }
        assert_eq!(process::substream_seed(42, 5), 42 ^ 6u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
}
