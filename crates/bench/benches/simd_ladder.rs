//! Figures 7–8 driver: the ISA-ladder computation over real encode
//! counters. (`tablegen fig7`/`fig8` print the tables.)

use bench::experiments::{suite, Scale};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use varch::{cycle_breakdown, isa_ladder, IsaTier};
use vbench::reference::reference_config;
use vbench::scenario::Scenario;
use vcodec::encode;

fn bench_simd(c: &mut Criterion) {
    // Produce real counters once, outside the timed region.
    let video = suite(Scale::Tiny).by_name("girl").expect("table 2 video").generate();
    let cfg = reference_config(Scenario::Vod, &video);
    let out = encode(&video, &cfg);
    let counters = out.stats.kernels.clone();

    c.bench_function("fig7_cycle_breakdown_avx2", |b| {
        b.iter(|| cycle_breakdown(black_box(&counters), IsaTier::Avx2))
    });
    c.bench_function("fig8_full_isa_ladder", |b| b.iter(|| isa_ladder(black_box(&counters))));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_simd
}
criterion_main!(benches);
