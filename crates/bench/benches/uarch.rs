//! Figures 5–6 driver: the cost of running the microarchitecture
//! simulator alongside an encode (probe overhead), and one simulated VOD
//! transcode. (`tablegen fig5`/`fig6` print the tables.)

use bench::experiments::{suite, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use varch::UarchSim;
use vbench::reference::reference_config;
use vbench::scenario::Scenario;
use vcodec::{encode, encode_with_probe};

fn bench_uarch(c: &mut Criterion) {
    let video = suite(Scale::Tiny).by_name("cricket").expect("table 2 video").generate();
    let cfg = reference_config(Scenario::Vod, &video);

    let mut group = c.benchmark_group("fig5_vod_transcode");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("no_probe", |b| b.iter(|| encode(&video, &cfg)));
    group.bench_function("with_uarch_sim", |b| {
        b.iter(|| {
            let mut sim = UarchSim::default();
            encode_with_probe(&video, &cfg, &mut sim)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_uarch);
criterion_main!(benches);
