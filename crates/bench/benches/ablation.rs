//! Ablation benches for the design choices DESIGN.md calls out: the
//! in-loop deblocking filter and the arithmetic entropy backend.
//! (`tablegen abl` prints the quality/bitrate side of the ablation.)

use bench::experiments::{suite, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use vcodec::entropy::EntropyBackend;
use vcodec::{encode, CodecFamily, EncoderConfig, Preset, RateControl};

fn bench_ablation(c: &mut Criterion) {
    let video = suite(Scale::Tiny).by_name("cricket").expect("table 2 video").generate();
    let base = EncoderConfig::new(
        CodecFamily::Avc,
        Preset::Medium,
        RateControl::ConstQuality { crf: 30.0 },
    );

    let mut group = c.benchmark_group("ablation_encode");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("baseline", |b| b.iter(|| encode(&video, &base)));
    group.bench_function("no_deblock", |b| {
        let cfg = base.without_deblock();
        b.iter(|| encode(&video, &cfg))
    });
    group.bench_function("vlc_entropy", |b| {
        let cfg = base.with_entropy_backend(EntropyBackend::Vlc);
        b.iter(|| encode(&video, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
