//! Tables 3–4 / Figure 9 driver: hardware-model encodes under the VOD and
//! Live configurations. (`tablegen tab3`/`tab4`/`fig9` print the tables.)

use bench::experiments::{suite, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vbench::reference::target_bps;
use vhw::{HwEncoder, HwVendor};

fn bench_hw(c: &mut Criterion) {
    let video = suite(Scale::Tiny).by_name("landscape").expect("table 2 video").generate();
    let bps = target_bps(&video);

    let mut group = c.benchmark_group("tab3_hw_encode");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for vendor in HwVendor::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(vendor), &vendor, |b, &vendor| {
            let hw = HwEncoder::new(vendor);
            b.iter(|| hw.encode_bitrate(&video, bps));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hw);
criterion_main!(benches);
