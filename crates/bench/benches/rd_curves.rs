//! Figure 2 driver: encoder-family speed at a fixed bitrate point.
//!
//! The timing half of the rate-distortion-speed comparison — the paper's
//! observation that the libx265/libvpx-vp9 classes cost 3–4× the compute
//! of the libx264 class. (`tablegen fig2` prints the full table.)

use bench::experiments::{suite, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vcodec::{encode, CodecFamily, EncoderConfig, Preset, RateControl};

fn bench_rd_point(c: &mut Criterion) {
    let video = suite(Scale::Tiny).by_name("funny").expect("table 2 video").generate();
    let bps = (2.0 * video.resolution().pixels() as f64) as u64;
    let mut group = c.benchmark_group("fig2_encode_at_2bpps");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for family in CodecFamily::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(family), &family, |b, &family| {
            let cfg = EncoderConfig::new(family, Preset::Medium, RateControl::Bitrate { bps });
            b.iter(|| encode(&video, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rd_point);
criterion_main!(benches);
