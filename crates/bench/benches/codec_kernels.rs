//! Microbenchmarks of the codec's hot kernels — the per-kernel costs the
//! paper's Section 5.2 profile is built from (transform, SAD, quantizer,
//! entropy coder).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vcodec::arith::{ArithEncoder, Context};
use vcodec::entropy::{EntropyBackend, EntropyEncoder};
use vcodec::quant::{quantize, Deadzone};
use vcodec::transform::{fdct, idct, TransformSize};
use vframe::block::{sad, satd, Block};

fn residual_block() -> Vec<i32> {
    (0..64).map(|i| ((i * 37) % 511) - 255).collect()
}

fn pixel_blocks() -> (Block, Block) {
    let a = Block::from_data(16, (0..256).map(|i| (i % 251) as i16).collect());
    let b = Block::from_data(16, (0..256).map(|i| ((i * 7) % 251) as i16).collect());
    (a, b)
}

fn bench_kernels(c: &mut Criterion) {
    let resid = residual_block();
    c.bench_function("fdct_8x8", |b| b.iter(|| fdct(TransformSize::T8, black_box(&resid))));
    let coeffs = fdct(TransformSize::T8, &resid);
    c.bench_function("idct_8x8", |b| b.iter(|| idct(TransformSize::T8, black_box(&coeffs))));
    c.bench_function("quantize_8x8", |b| {
        b.iter(|| quantize(black_box(&coeffs), 26, Deadzone::Inter))
    });

    let (pa, pb) = pixel_blocks();
    c.bench_function("sad_16x16", |b| b.iter(|| sad(black_box(&pa), black_box(&pb))));
    c.bench_function("satd_16x16", |b| b.iter(|| satd(black_box(&pa), black_box(&pb))));

    c.bench_function("arith_encode_4096_bits", |b| {
        b.iter(|| {
            let mut enc = ArithEncoder::new();
            let mut ctx = Context::new(4);
            for i in 0..4096u32 {
                enc.encode(&mut ctx, i % 5 == 0);
            }
            enc.finish()
        })
    });

    let levels = quantize(&coeffs, 30, Deadzone::Inter);
    c.bench_function("coeff_block_vlc", |b| {
        b.iter(|| {
            let mut enc = EntropyEncoder::new(EntropyBackend::Vlc);
            for _ in 0..16 {
                enc.put_coeff_block(TransformSize::T8, black_box(&levels));
            }
            enc.finish()
        })
    });
    c.bench_function("coeff_block_arith", |b| {
        b.iter(|| {
            let mut enc = EntropyEncoder::new(EntropyBackend::Arith { shift: 4 });
            for _ in 0..16 {
                enc.put_coeff_block(TransformSize::T8, black_box(&levels));
            }
            enc.finish()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_kernels
}
criterion_main!(benches);
