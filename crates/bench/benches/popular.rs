//! Table 5 driver: maximum-effort next-generation-family encodes (the
//! Popular scenario's candidates). (`tablegen tab5` prints the table.)

use bench::experiments::{suite, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vbench::reference::target_bps;
use vcodec::{encode, CodecFamily, EncoderConfig, Preset, RateControl};

fn bench_popular(c: &mut Criterion) {
    let video = suite(Scale::Tiny).by_name("funny").expect("table 2 video").generate();
    let bps = target_bps(&video);

    let mut group = c.benchmark_group("tab5_veryslow_two_pass");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for family in [CodecFamily::Avc, CodecFamily::Hevc, CodecFamily::Vp9] {
        group.bench_with_input(BenchmarkId::from_parameter(family), &family, |b, &family| {
            let cfg =
                EncoderConfig::new(family, Preset::VerySlow, RateControl::TwoPassBitrate { bps });
            b.iter(|| encode(&video, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_popular);
criterion_main!(benches);
