//! Experiment drivers: one function per paper table/figure.
//!
//! Every function regenerates the corresponding artifact's *rows*; the
//! `tablegen` binary prints them, the Criterion benches time representative
//! slices, and EXPERIMENTS.md records a full run. Absolute numbers depend
//! on the machine and the chosen [`Scale`]; the shapes are the
//! reproduction targets.
//!
//! Every encode routes through the unified transcode engine
//! ([`vbench::engine`]); Tables 3/4/5 additionally fan their rows out
//! across worker threads via the transcode farm. The one deliberate
//! exception is the microarchitecture studies (Figures 5–8), which attach
//! a simulator probe to the encoder and therefore call
//! [`vcodec::encode_with_probe`] directly — the probe is a tracing
//! concern below the engine's surface.

use varch::{cycle_breakdown, isa_ladder, IsaTier, MachineConfig, UarchReport, UarchSim};
use vbench::engine::{transcode, Engine, RateMode, TranscodeError, TranscodeRequest};
use vbench::farm::{transcode_batch_resilient, BatchError, EngineBatchReport, EngineJob};
use vbench::fleet::{predict_encode_secs, JobFeatures};
use vbench::journal::{run_batch_journaled, JournalConfig, JournalError};
use vbench::measure::Measurement;
use vbench::reference::{
    reference_config, reference_encode_with_native, reference_request_with_native, target_bps,
};
use vbench::report::{fmt_ratio, TextTable};
use vbench::resilience::ResilienceConfig;
use vbench::scenario::{score_with_video, Scenario, ScenarioScore};
use vbench::suite::{Suite, SuiteOptions, SuiteVideo};
use vcodec::{encode_with_probe, CodecFamily, Preset};
use vcorpus::corpus::CorpusModel;
use vcorpus::coverage::coverage_fraction;
use vcorpus::datasets;
use vcorpus::selection::{select_suite, SelectionConfig};
use vcorpus::VideoCategory;
use vframe::metrics::psnr_video;
use vhw::{HwVendor, InstanceCatalog};

/// Why an experiment driver could not produce its rows.
#[derive(Clone, PartialEq, Debug)]
pub enum ExperimentError {
    /// A `--videos` name does not exist in the suite.
    UnknownVideo(String),
    /// The transcode farm failed the run (zero workers, or a job failed
    /// after exhausting its retry budget).
    Batch(BatchError),
    /// A serial (reference or timed) transcode failed.
    Transcode(TranscodeError),
    /// The durability journal could not be used (IO failure or manifest
    /// mismatch). Carries the rendered message.
    Journal(String),
    /// A scripted crash fault fired mid-batch: the journaled work
    /// survives, so rerunning with `--resume` completes the batch.
    /// Distinct from [`ExperimentError::Journal`] so drivers can map it
    /// to the simulated-crash exit code.
    SimulatedCrash(String),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::UnknownVideo(name) => write!(f, "no suite video '{name}'"),
            ExperimentError::Batch(e) => e.fmt(f),
            ExperimentError::Transcode(e) => e.fmt(f),
            ExperimentError::Journal(msg) => f.write_str(msg),
            ExperimentError::SimulatedCrash(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<BatchError> for ExperimentError {
    fn from(e: BatchError) -> ExperimentError {
        ExperimentError::Batch(e)
    }
}

impl From<TranscodeError> for ExperimentError {
    fn from(e: TranscodeError) -> ExperimentError {
        ExperimentError::Transcode(e)
    }
}

impl From<JournalError> for ExperimentError {
    fn from(e: JournalError) -> ExperimentError {
        match e {
            JournalError::Batch(e) => ExperimentError::Batch(e),
            crash @ JournalError::Crashed { .. } => {
                ExperimentError::SimulatedCrash(crash.to_string())
            }
            other => ExperimentError::Journal(other.to_string()),
        }
    }
}

/// Run size: how large the synthesized clips are.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Smallest clips; seconds per experiment. Debug-safe.
    Tiny,
    /// Half-size clips; minutes per full table in release mode.
    Experiment,
    /// Paper-scale clips (native resolution, 5 s).
    Full,
}

impl Scale {
    /// Suite options for this scale.
    pub fn options(&self) -> SuiteOptions {
        match self {
            Scale::Tiny => SuiteOptions::tiny(),
            Scale::Experiment => SuiteOptions::experiment(),
            Scale::Full => SuiteOptions::default(),
        }
    }

    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "experiment" | "exp" => Some(Scale::Experiment),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// Builds the suite at a scale.
pub fn suite(scale: Scale) -> Suite {
    Suite::vbench(&scale.options())
}

/// Simulated machine matched to the scale: scaled-down frames need a
/// scaled-down LLC to preserve the capacity-pressure ratios of the
/// paper's full-size measurement (a standard scaled-simulation practice;
/// L1 caches keep their true sizes since block working sets are
/// scale-invariant).
pub fn machine_for(scale: Scale) -> MachineConfig {
    let llc_bytes = match scale {
        Scale::Tiny => 64 * 1024,
        Scale::Experiment => 512 * 1024,
        Scale::Full => 8 * 1024 * 1024,
    };
    MachineConfig { llc_bytes, ..MachineConfig::default() }
}

// ---------------------------------------------------------------- Figure 1

/// Figure 1: upload growth vs CPU growth, normalized to 2007.
pub fn fig1_table() -> TextTable {
    let mut t = TextTable::new(["year", "uploads (hrs/min)", "upload growth", "SPECrate growth"]);
    for (year, up, spec) in vbench::figures::normalized_growth() {
        let raw =
            vbench::figures::GROWTH_SERIES.iter().find(|p| p.year == year).expect("year in series");
        t.push_row([
            year.to_string(),
            format!("{:.0}", raw.upload_hours_per_min),
            format!("{up:.1}x"),
            format!("{spec:.1}x"),
        ]);
    }
    t
}

// ---------------------------------------------------------------- Figure 2

/// Figure 2: PSNR and speed vs bitrate for the three encoder families on
/// one HD animation clip, plus BD-rate of each newer family against the
/// AVC-class anchor.
pub fn fig2_rd_curves(scale: Scale) -> TextTable {
    let s = suite(scale);
    let video = s.by_name("funny").expect("funny is the HD animation clip").generate();
    let pixels_per_frame = video.resolution().pixels() as f64;
    let mut t = TextTable::new(["family", "target bit/pix/s", "actual", "PSNR dB", "Mpix/s"]);
    let mut curves: Vec<(CodecFamily, Vec<vbench::RdPoint>)> = Vec::new();
    for family in CodecFamily::ALL {
        let mut curve = Vec::new();
        for bpps in [0.3, 1.0, 2.0, 4.0, 8.0] {
            let bps = (bpps * pixels_per_frame) as u64;
            let req = TranscodeRequest::software(family, Preset::Medium, RateMode::Bitrate { bps });
            let m = transcode(&video, &req).expect("rd point").measurement;
            curve.push(vbench::RdPoint::new(m.bitrate_bpps, m.quality_db));
            t.push_row([
                family.to_string(),
                format!("{bpps:.1}"),
                format!("{:.2}", m.bitrate_bpps),
                format!("{:.2}", m.quality_db),
                format!("{:.2}", m.speed_mpps()),
            ]);
        }
        curves.push((family, curve));
    }
    // BD-rate summary rows against the AVC-class anchor.
    let anchor = curves[0].1.clone();
    for (family, curve) in curves.iter().skip(1) {
        let bd = vbench::bd_rate(&anchor, curve);
        t.push_row([
            format!("{family} BD-rate"),
            String::new(),
            String::new(),
            String::new(),
            format!("{bd:+.1}%"),
        ]);
    }
    t
}

// ---------------------------------------------------------------- Figure 4

/// Figure 4: coverage of the corpus by each dataset (the scatter,
/// quantified as weight-within-radius).
pub fn fig4_coverage() -> TextTable {
    let corpus = CorpusModel::new().sample_categories(30_000, 2017);
    let radius = 0.35;
    let mut t = TextTable::new(["dataset", "videos", "min entropy", "max entropy", "coverage"]);
    for profile in datasets::all_profiles() {
        let pts: Vec<VideoCategory> = profile.videos.iter().map(|v| v.category).collect();
        let min_e = pts.iter().map(|c| c.entropy).fold(f64::INFINITY, f64::min);
        let max_e = pts.iter().map(|c| c.entropy).fold(0.0, f64::max);
        t.push_row([
            profile.name.to_string(),
            pts.len().to_string(),
            format!("{min_e:.1}"),
            format!("{max_e:.1}"),
            format!("{:.1}%", 100.0 * coverage_fraction(&pts, &corpus, radius)),
        ]);
    }
    t
}

/// Table 2 companion: the k-means selection pipeline run on the synthetic
/// corpus (the derived suite the methodology produces).
pub fn tab2_derived_selection() -> TextTable {
    let corpus = CorpusModel::new().sample_categories(30_000, 2017);
    let selected = select_suite(&corpus, &SelectionConfig::default());
    let mut t = TextTable::new(["kpixels", "fps", "entropy", "share"]);
    for s in &selected {
        t.push_row([
            s.category.kpixels.to_string(),
            s.category.fps.to_string(),
            format!("{:.1}", s.category.entropy),
            format!("{:.1}%", 100.0 * s.share),
        ]);
    }
    t
}

// ------------------------------------------------------------ Figures 5–8

/// One microarchitecture run: a suite video encoded under the VOD
/// reference with the simulator attached.
#[derive(Clone, Debug)]
pub struct UarchRow {
    /// Video name.
    pub name: &'static str,
    /// Published entropy.
    pub entropy: f64,
    /// Simulator report.
    pub report: UarchReport,
}

/// Runs the simulator over the named suite videos (all 15 if `names` is
/// `None`).
///
/// # Errors
///
/// [`ExperimentError::UnknownVideo`] when a name is not in the suite.
pub fn uarch_rows(scale: Scale, names: Option<&[&str]>) -> Result<Vec<UarchRow>, ExperimentError> {
    let s = suite(scale);
    let videos: Vec<&SuiteVideo> = match names {
        Some(list) => list
            .iter()
            .map(|n| s.by_name(n).ok_or_else(|| ExperimentError::UnknownVideo(n.to_string())))
            .collect::<Result<_, _>>()?,
        None => s.iter().collect(),
    };
    Ok(videos
        .into_iter()
        .map(|entry| {
            let video = entry.generate();
            let cfg = reference_config(Scenario::Vod, &video);
            let mut sim = UarchSim::new(machine_for(scale));
            let _ = encode_with_probe(&video, &cfg, &mut sim);
            UarchRow { name: entry.name, entropy: entry.category.entropy, report: sim.report() }
        })
        .collect())
}

/// Figure 5: I$ / branch / LLC MPKI vs entropy.
pub fn fig5_table(rows: &[UarchRow]) -> TextTable {
    let mut t =
        TextTable::new(["video", "entropy", "I$ MPKI", "branch MPKI", "LLC MPKI", "L1D MPKI"]);
    let mut sorted: Vec<&UarchRow> = rows.iter().collect();
    sorted.sort_by(|a, b| a.entropy.partial_cmp(&b.entropy).expect("finite"));
    for r in sorted {
        t.push_row([
            r.name.to_string(),
            format!("{:.1}", r.entropy),
            format!("{:.2}", r.report.icache_mpki),
            format!("{:.2}", r.report.branch_mpki),
            format!("{:.2}", r.report.llc_mpki),
            format!("{:.2}", r.report.l1d_mpki),
        ]);
    }
    t
}

/// Figure 6: Top-Down breakdown per video.
pub fn fig6_table(rows: &[UarchRow]) -> TextTable {
    let mut t = TextTable::new(["video", "FE", "BAD", "BE/Mem", "BE/Core", "RET"]);
    for r in rows {
        let td = r.report.topdown;
        t.push_row([
            r.name.to_string(),
            format!("{:.1}%", 100.0 * td.frontend),
            format!("{:.1}%", 100.0 * td.bad_speculation),
            format!("{:.1}%", 100.0 * td.backend_memory),
            format!("{:.1}%", 100.0 * td.backend_core),
            format!("{:.1}%", 100.0 * td.retiring),
        ]);
    }
    t
}

/// Figure 7: scalar vs AVX2 cycle fraction vs entropy.
pub fn fig7_table(rows: &[UarchRow]) -> TextTable {
    let mut t = TextTable::new(["video", "entropy", "scalar", "vec128", "avx2"]);
    let mut sorted: Vec<&UarchRow> = rows.iter().collect();
    sorted.sort_by(|a, b| a.entropy.partial_cmp(&b.entropy).expect("finite"));
    for r in sorted {
        let b = cycle_breakdown(&r.report.counters, IsaTier::Avx2);
        t.push_row([
            r.name.to_string(),
            format!("{:.1}", r.entropy),
            format!("{:.1}%", 100.0 * b.scalar_fraction()),
            format!("{:.1}%", 100.0 * (1.0 - b.scalar_fraction() - b.vec256_fraction())),
            format!("{:.1}%", 100.0 * b.vec256_fraction()),
        ]);
    }
    t
}

/// Figure 8: the ISA ladder, cycles normalized to the AVX2 build,
/// aggregated over the given runs.
pub fn fig8_table(rows: &[UarchRow]) -> TextTable {
    let mut total = vcodec::KernelCounters::new();
    for r in rows {
        total.merge(&r.report.counters);
    }
    let ladder = isa_ladder(&total);
    let avx2_total =
        ladder.iter().find(|(t, _)| *t == IsaTier::Avx2).expect("avx2 in ladder").1.total();
    let mut t = TextTable::new(["ISA", "cycles vs AVX2", "scalar", "vec128", "vec256"]);
    for (tier, b) in &ladder {
        t.push_row([
            tier.name().to_string(),
            format!("{:.2}x", b.total() / avx2_total),
            format!("{:.1}%", 100.0 * b.scalar / b.total()),
            format!("{:.1}%", 100.0 * b.vec128 / b.total()),
            format!("{:.1}%", 100.0 * b.vec256 / b.total()),
        ]);
    }
    t
}

/// Figure 5's bias demonstration: run the same microarchitecture study
/// over synthetic stand-ins for each public dataset and report the
/// *trend slope* of each metric against log2(entropy). The paper's claim:
/// datasets lacking low-entropy videos (Netflix, Xiph) show distorted or
/// missing trends.
pub fn fig5_bias_table(scale: Scale, per_dataset: usize) -> TextTable {
    let opts = scale.options();
    let mut t = TextTable::new([
        "dataset",
        "videos",
        "entropy span",
        "I$ slope",
        "LLC slope",
        "branch slope",
    ]);
    for profile in datasets::all_profiles() {
        let videos: Vec<_> = profile.videos.iter().take(per_dataset).collect();
        let mut points: Vec<(f64, f64, f64, f64)> = Vec::new();
        for dv in &videos {
            let sv = vbench::suite::synthetic_for_category(dv.name, &dv.category, &opts);
            let video = sv.generate();
            let cfg = reference_config(Scenario::Vod, &video);
            let mut sim = UarchSim::new(machine_for(scale));
            let _ = encode_with_probe(&video, &cfg, &mut sim);
            let r = sim.report();
            points.push((dv.category.entropy.log2(), r.icache_mpki, r.llc_mpki, r.branch_mpki));
        }
        let span = {
            let min = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
            let max = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
            max - min
        };
        t.push_row([
            profile.name.to_string(),
            points.len().to_string(),
            format!("{span:.1} oct"),
            format!("{:+.3}", slope(points.iter().map(|p| (p.0, p.1)))),
            format!("{:+.3}", slope(points.iter().map(|p| (p.0, p.2)))),
            format!("{:+.3}", slope(points.iter().map(|p| (p.0, p.3)))),
        ]);
    }
    t
}

/// Least-squares slope of y against x; 0 for degenerate inputs.
fn slope(points: impl Iterator<Item = (f64, f64)>) -> f64 {
    let pts: Vec<(f64, f64)> = points.collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return 0.0;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    }
}

/// Ablation study: the contribution of the in-loop deblocking filter and
/// the arithmetic entropy backend, on one mid-entropy suite video.
pub fn ablation_table(scale: Scale) -> TextTable {
    let s = suite(scale);
    let video = s.by_name("cricket").expect("table 2 video").generate();
    let base = TranscodeRequest::software(
        CodecFamily::Avc,
        Preset::Medium,
        RateMode::ConstQuality { crf: 30.0 },
    );
    let variants: [(&str, TranscodeRequest); 3] = [
        ("baseline (deblock, arith)", base),
        ("no deblocking filter", base.without_deblock()),
        ("VLC entropy backend", base.with_entropy_backend(vcodec::entropy::EntropyBackend::Vlc)),
    ];
    let mut t = TextTable::new(["variant", "bytes", "PSNR dB", "note"]);
    let mut baseline: Option<(usize, f64)> = None;
    for (name, req) in variants {
        let out = transcode(&video, &req).expect("ablation variant").output;
        let q = psnr_video(&video, &out.recon);
        let note = match baseline {
            None => {
                baseline = Some((out.bytes.len(), q));
                String::new()
            }
            Some((b_bytes, b_q)) => format!(
                "{:+.1}% bits, {:+.2} dB",
                100.0 * (out.bytes.len() as f64 / b_bytes as f64 - 1.0),
                q - b_q
            ),
        };
        t.push_row([name.to_string(), out.bytes.len().to_string(), format!("{q:.2}"), note]);
    }
    // B frames: bidirectional prediction, one B between references.
    {
        let out = transcode(&video, &base.with_bframes()).expect("bframes variant").output;
        let q = psnr_video(&video, &out.recon);
        let (b_bytes, b_q) = baseline.expect("baseline ran first");
        t.push_row([
            "B frames (IBPBP)".to_string(),
            out.bytes.len().to_string(),
            format!("{q:.2}"),
            format!(
                "{:+.1}% bits, {:+.2} dB",
                100.0 * (out.bytes.len() as f64 / b_bytes as f64 - 1.0),
                q - b_q
            ),
        ]);
    }
    // Denoise pre-filter (Section 2.1's optional tool): encode the
    // filtered clip, but measure PSNR against the *original* source.
    let denoised = vframe::filter::denoise_video(&video, 0.7, 0.5);
    let out = transcode(&denoised, &base).expect("denoise variant").output;
    let q = psnr_video(&video, &out.recon);
    let (b_bytes, b_q) = baseline.expect("baseline ran first");
    t.push_row([
        "denoise pre-filter (0.7/0.5)".to_string(),
        out.bytes.len().to_string(),
        format!("{q:.2}"),
        format!(
            "{:+.1}% bits, {:+.2} dB",
            100.0 * (out.bytes.len() as f64 / b_bytes as f64 - 1.0),
            q - b_q
        ),
    ]);
    t
}

/// Fleet-sizing study (Section 5.3's "significant downsizing of the
/// transcoding fleet"): size a fleet for a Figure-1-scale upload load
/// (500 hours of 1080p30 video per minute) and price it in dollars. Two
/// measured anchor rows — real software throughput of the reference
/// transcode and the modelled QSV-class hardware run, with the
/// egress-side price of the hardware's extra bitrate — followed by one
/// row per [`vhw::InstanceCatalog`] entry sized from the cost plane's
/// content-feature predictor, so the sizing and the dollar column come
/// from the same model `vbench plan` schedules with.
pub fn fleet_table(scale: Scale) -> TextTable {
    let s = suite(scale);
    let entry = s.by_name("girl").expect("table 2 video");
    let video = entry.generate();
    // Software VOD worker: measured throughput of the reference transcode.
    let (sw, _) = reference_encode_with_native(Scenario::Vod, &video, entry.category.kpixels);
    // Hardware worker: modelled pipeline speed, and its bitrate at the
    // software reference quality.
    let bps = target_bps(&video);
    let hw_req = TranscodeRequest::hardware(
        HwVendor::Qsv,
        RateMode::QualityTarget {
            target_db: sw.quality_db,
            lo_bps: bps / 8,
            hi_bps: bps * 8,
            fallback_bps: Some(bps),
        },
    );
    let hw_run = transcode(&video, &hw_req).expect("hardware worker").measurement;
    let hw_speed = hw_run.speed_pps;
    let hw_bpps = hw_run.bitrate_bpps;

    // Figure-1-scale offered load: 500 hours/min of 1080p30 uploads.
    let offered = 500.0 * 60.0 * 1920.0 * 1080.0 * 30.0;
    let util = 0.7;
    let catalog = InstanceCatalog::default_fleet();
    let sw_rate = catalog.baseline().dollars_per_hour;
    let hw_rate =
        catalog.by_name("x86-qsv").expect("x86-qsv in the default fleet").dollars_per_hour;
    let sw_fleet = vbench::fleet::fleet_size_for(offered, sw.speed_pps, util);
    let hw_fleet = vbench::fleet::fleet_size_for(offered, hw_speed, util);

    let mut t =
        TextTable::new(["worker", "speed Mpix/s", "fleet size", "fleet $/h", "relative egress"]);
    t.push_row([
        "software (VOD ref, measured)".to_string(),
        format!("{:.2}", sw.speed_mpps()),
        sw_fleet.to_string(),
        format!("{:.0}", f64::from(sw_fleet) * sw_rate),
        "1.00x".to_string(),
    ]);
    t.push_row([
        "hardware (QSV-class, measured)".to_string(),
        format!("{:.2}", hw_speed / 1e6),
        hw_fleet.to_string(),
        format!("{:.0}", f64::from(hw_fleet) * hw_rate),
        format!("{:.2}x", hw_bpps / sw.bitrate_bpps),
    ]);
    // Catalog rows: each instance type sized from the predictor on the
    // same representative upload (Fast preset — the Upload reference),
    // priced at its catalog rate. Egress is a measurement, not a model
    // output, so predicted rows leave it blank.
    let features = JobFeatures {
        pixels_per_frame: entry.spec.resolution.pixels(),
        frames: entry.spec.frames as u64,
        fps: entry.spec.fps,
        entropy: entry.category.entropy,
        preset: Preset::Fast,
    };
    for e in catalog.entries() {
        let speed = features.total_pixels() / predict_encode_secs(&features, e);
        let fleet = vbench::fleet::fleet_size_for(offered, speed, util);
        t.push_row([
            format!("{} (predicted)", e.name),
            format!("{:.2}", speed / 1e6),
            fleet.to_string(),
            format!("{:.0}", f64::from(fleet) * e.dollars_per_hour),
            "-".to_string(),
        ]);
    }
    t
}

// ----------------------------------------------------------- Tables 1 & 2

/// Table 1: the scoring functions (static).
pub fn tab1_table() -> TextTable {
    let mut t = TextTable::new(["scenario", "constraint", "score"]);
    t.push_row(["Upload", "B > 0.2", "S x Q"]);
    t.push_row(["Live", "S_new >= output Mpixel/s", "B x Q"]);
    t.push_row(["VOD", "Q >= 1 or Q_new >= 50 dB", "S x B"]);
    t.push_row(["Popular", "B, Q >= 1 and S >= 0.1", "B x Q"]);
    t.push_row(["Platform", "B = Q = 1", "S"]);
    t
}

/// Table 2: the suite, with each synthetic clip's *measured* entropy next
/// to the published value.
pub fn tab2_table(scale: Scale) -> TextTable {
    let s = suite(scale);
    let mut t =
        TextTable::new(["resolution", "name", "published entropy", "measured entropy", "class"]);
    for v in &s {
        let video = v.generate();
        let measured = vbench::reference::measure_entropy(&video);
        t.push_row([
            format!("{} kpix", v.category.kpixels),
            v.name.to_string(),
            format!("{:.1}", v.category.entropy),
            format!("{measured:.1}"),
            format!("{:?}", v.spec.class),
        ]);
    }
    t
}

// ---------------------------------------------------------- Tables 3/4/5

/// One hardware-scenario result row.
#[derive(Clone, Debug)]
pub struct HwRow {
    /// Video name.
    pub name: &'static str,
    /// Vendor.
    pub vendor: HwVendor,
    /// Score result (ratios always populated).
    pub score: ScenarioScore,
}

/// Table 3: NVENC/QSV under the VOD scenario — bitrate bisected until the
/// hardware matches the reference quality, per the paper's methodology.
/// Hardware rows fan out across `workers` farm threads (their speed is
/// modelled, so the worker count never changes a value) under the given
/// resilience policy; the timed software references run serially.
///
/// # Errors
///
/// See [`ExperimentError`].
pub fn tab3_rows(
    scale: Scale,
    names: Option<&[&str]>,
    workers: usize,
    policy: &ResilienceConfig,
    journal: Option<&JournalConfig>,
) -> Result<Vec<HwRow>, ExperimentError> {
    hw_scenario_rows(scale, names, Scenario::Vod, workers, policy, journal)
}

/// Table 4: NVENC/QSV under the Live scenario at reference quality.
/// Hardware rows fan out across `workers` farm threads under the given
/// resilience policy; the timed software references run serially.
///
/// # Errors
///
/// See [`ExperimentError`].
pub fn tab4_rows(
    scale: Scale,
    names: Option<&[&str]>,
    workers: usize,
    policy: &ResilienceConfig,
    journal: Option<&JournalConfig>,
) -> Result<Vec<HwRow>, ExperimentError> {
    hw_scenario_rows(scale, names, Scenario::Live, workers, policy, journal)
}

/// Resolves `names` against the suite (all 15 videos when `None`) and
/// generates each clip once.
fn generated_videos(
    s: &Suite,
    names: Option<&[&str]>,
) -> Result<Vec<(&'static str, u32, vframe::Video)>, ExperimentError> {
    let videos: Vec<&SuiteVideo> = match names {
        Some(list) => list
            .iter()
            .map(|n| s.by_name(n).ok_or_else(|| ExperimentError::UnknownVideo(n.to_string())))
            .collect::<Result<_, _>>()?,
        None => s.iter().collect(),
    };
    Ok(videos.into_iter().map(|e| (e.name, e.category.kpixels, e.generate())).collect())
}

/// Runs the scenario references for every clip and returns their
/// measurements, in clip order.
///
/// References run serially on purpose: their measured wall-clock speed is
/// the denominator of every S ratio, so they must not contend with each
/// other for cores (farming timed encodes past the core count would
/// inflate every speed ratio in the table).
fn reference_measurements(
    clips: &[(&'static str, u32, vframe::Video)],
    scenario: Scenario,
) -> Result<Vec<Measurement>, ExperimentError> {
    clips
        .iter()
        .map(|(_, kpixels, video)| {
            Ok(transcode(video, &reference_request_with_native(scenario, video, *kpixels))?
                .measurement)
        })
        .collect()
}

/// Farms one experiment batch, journaled when a [`JournalConfig`] is
/// given (the `tablegen --journal` path) and plain otherwise.
fn farm_batch(
    jobs: &[EngineJob],
    workers: usize,
    policy: &ResilienceConfig,
    journal: Option<&JournalConfig>,
) -> Result<EngineBatchReport, ExperimentError> {
    match journal {
        None => Ok(transcode_batch_resilient(&Engine, jobs, workers, policy)?),
        Some(config) => Ok(run_batch_journaled(&Engine, jobs, workers, policy, config)?),
    }
}

fn hw_scenario_rows(
    scale: Scale,
    names: Option<&[&str]>,
    scenario: Scenario,
    workers: usize,
    policy: &ResilienceConfig,
    journal: Option<&JournalConfig>,
) -> Result<Vec<HwRow>, ExperimentError> {
    let s = suite(scale);
    let clips = generated_videos(&s, names)?;
    let references = reference_measurements(&clips, scenario)?;
    // The paper's tuning: lower the bitrate until quality matches the
    // reference by a small margin; fall back to the ladder target when
    // even max bitrate cannot match. One farm job per (video, vendor) —
    // hardware speed is modelled, not timed, so these rows are
    // worker-count-invariant.
    let jobs: Vec<EngineJob> = clips
        .iter()
        .zip(&references)
        .flat_map(|((name, _, video), reference)| {
            let bps = target_bps(video);
            HwVendor::ALL.map(|vendor| {
                EngineJob::new(
                    format!("{name}/{vendor}"),
                    video.clone(),
                    TranscodeRequest::hardware(
                        vendor,
                        RateMode::QualityTarget {
                            target_db: reference.quality_db,
                            lo_bps: bps / 8,
                            hi_bps: bps * 8,
                            fallback_bps: Some(bps),
                        },
                    ),
                )
            })
        })
        .collect();
    let report = farm_batch(&jobs, workers, policy, journal)?.require_complete()?;
    let mut rows = Vec::with_capacity(jobs.len());
    for (((name, _, video), reference), pair) in
        clips.iter().zip(&references).zip(report.results.chunks(HwVendor::ALL.len()))
    {
        for (vendor, result) in HwVendor::ALL.iter().zip(pair) {
            // Invariant: require_complete() above guarantees success.
            let outcome = result.outcome.as_ref().expect("complete batch");
            let score = score_with_video(scenario, video, outcome.measurement(), reference);
            rows.push(HwRow { name, vendor: *vendor, score });
        }
    }
    Ok(rows)
}

/// Renders Table 3 (S, B, VOD score per vendor).
pub fn tab3_table(rows: &[HwRow]) -> TextTable {
    let mut t = TextTable::new(["video", "vendor", "S", "B", "VOD score"]);
    for r in rows {
        t.push_row([
            r.name.to_string(),
            r.vendor.name().to_string(),
            fmt_ratio(r.score.ratios.s),
            fmt_ratio(r.score.ratios.b),
            vbench::report::fmt_score(&r.score),
        ]);
    }
    t
}

/// Renders Table 4 (Q, B, Live score per vendor).
pub fn tab4_table(rows: &[HwRow]) -> TextTable {
    let mut t = TextTable::new(["video", "vendor", "Q", "B", "Live score"]);
    for r in rows {
        t.push_row([
            r.name.to_string(),
            r.vendor.name().to_string(),
            fmt_ratio(r.score.ratios.q),
            fmt_ratio(r.score.ratios.b),
            vbench::report::fmt_score(&r.score),
        ]);
    }
    t
}

/// Figure 9: the VOD (S vs B) and Live (B vs Q) scatters, from the same
/// runs as Tables 3 and 4.
pub fn fig9_table(vod: &[HwRow], live: &[HwRow]) -> TextTable {
    let mut t = TextTable::new(["scenario", "video", "vendor", "x", "y", "gain?"]);
    for r in vod {
        t.push_row([
            "VOD (x=B, y=S)".to_string(),
            r.name.to_string(),
            r.vendor.name().to_string(),
            fmt_ratio(r.score.ratios.b),
            fmt_ratio(r.score.ratios.s),
            if r.score.ratios.s > 1.0 { "speed" } else { "-" }.to_string(),
        ]);
    }
    for r in live {
        t.push_row([
            "Live (x=B, y=Q)".to_string(),
            r.name.to_string(),
            r.vendor.name().to_string(),
            fmt_ratio(r.score.ratios.b),
            fmt_ratio(r.score.ratios.q),
            if r.score.ratios.b >= 1.0 && r.score.ratios.q >= 1.0 { "win" } else { "-" }
                .to_string(),
        ]);
    }
    t
}

/// One next-generation-software result row (Table 5).
#[derive(Clone, Debug)]
pub struct SwRow {
    /// Video name.
    pub name: &'static str,
    /// Encoder family.
    pub family: CodecFamily,
    /// Score result.
    pub score: ScenarioScore,
}

/// The next-generation software families Table 5 measures.
const TAB5_FAMILIES: [CodecFamily; 2] = [CodecFamily::Vp9, CodecFamily::Hevc];

/// Table 5: libvpx-vp9- and libx265-class encoders on the Popular
/// scenario — maximum effort, bitrate bisected to reference quality.
/// The bisection probes fan out across `workers` farm threads under the
/// given resilience policy; every *timed* encode (references and the
/// chosen operating points) runs serially so the S ratios are
/// contention-free at any worker count.
///
/// # Errors
///
/// See [`ExperimentError`].
pub fn tab5_rows(
    scale: Scale,
    names: Option<&[&str]>,
    workers: usize,
    policy: &ResilienceConfig,
    journal: Option<&JournalConfig>,
) -> Result<Vec<SwRow>, ExperimentError> {
    let s = suite(scale);
    let clips = generated_videos(&s, names)?;
    let references = reference_measurements(&clips, Scenario::Popular)?;
    // Bisect each family's bitrate down to iso-quality with the
    // reference; the ladder target is the fallback. One farm job per
    // (video, family) — the farm absorbs the expensive bisection probes;
    // the timed measurement is re-taken serially below.
    let jobs: Vec<EngineJob> = clips
        .iter()
        .zip(&references)
        .flat_map(|((name, _, video), reference)| {
            let bps = target_bps(video);
            TAB5_FAMILIES.map(|family| {
                EngineJob::new(
                    format!("{name}/{family}"),
                    video.clone(),
                    TranscodeRequest::software(
                        family,
                        Preset::VerySlow,
                        RateMode::QualityTarget {
                            target_db: reference.quality_db,
                            lo_bps: bps / 8,
                            hi_bps: bps * 4,
                            fallback_bps: Some(bps),
                        },
                    ),
                )
            })
        })
        .collect();
    let report = farm_batch(&jobs, workers, policy, journal)?.require_complete()?;
    let mut rows = Vec::with_capacity(jobs.len());
    for (((name, _, video), reference), pair) in
        clips.iter().zip(&references).zip(report.results.chunks(TAB5_FAMILIES.len()))
    {
        for (family, result) in TAB5_FAMILIES.iter().zip(pair) {
            // Software speed is wall-clock, and the farmed encode above
            // may have shared cores with other jobs; re-encode the chosen
            // operating point serially so the S ratio is measured the way
            // the reference was. Bytes must not change — only the timing.
            // Invariant: require_complete() above guarantees success, and
            // a QualityTarget run always records its bisected bitrate.
            let outcome = result.outcome.as_ref().expect("complete batch");
            let chosen = outcome.chosen_bps().expect("bisected bitrate");
            let timed = transcode(
                video,
                &TranscodeRequest::software(
                    *family,
                    Preset::VerySlow,
                    RateMode::TwoPassBitrate { bps: chosen },
                ),
            )?;
            assert_eq!(
                timed.output.bytes.as_slice(),
                outcome.bytes(),
                "serial re-encode diverged from farmed encode"
            );
            let score = score_with_video(Scenario::Popular, video, &timed.measurement, reference);
            rows.push(SwRow { name, family: *family, score });
        }
    }
    Ok(rows)
}

/// Renders Table 5 (Q, B, Popular score per family).
pub fn tab5_table(rows: &[SwRow]) -> TextTable {
    let mut t = TextTable::new(["video", "family", "Q", "B", "S", "Popular score"]);
    for r in rows {
        t.push_row([
            r.name.to_string(),
            r.family.to_string(),
            fmt_ratio(r.score.ratios.q),
            fmt_ratio(r.score.ratios.b),
            fmt_ratio(r.score.ratios.s),
            vbench::report::fmt_score(&r.score),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("exp"), Some(Scale::Experiment));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn static_tables_render() {
        assert_eq!(tab1_table().len(), 5);
        assert_eq!(fig1_table().len(), 11);
    }

    #[test]
    fn fig4_has_all_datasets() {
        let t = fig4_coverage();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn uarch_rows_cover_requested_videos() {
        let rows = uarch_rows(Scale::Tiny, Some(&["desktop", "hall"])).expect("known videos");
        assert_eq!(rows.len(), 2);
        assert!(fig5_table(&rows).len() == 2);
        assert!(fig6_table(&rows).len() == 2);
        assert!(fig7_table(&rows).len() == 2);
        assert_eq!(fig8_table(&rows).len(), 7); // one row per ISA tier
    }

    #[test]
    fn hw_rows_produce_both_vendors() {
        let rows = tab4_rows(Scale::Tiny, Some(&["girl"]), 2, &ResilienceConfig::default(), None)
            .expect("known video");
        assert_eq!(rows.len(), 2);
        let t = tab4_table(&rows);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn sw_rows_produce_both_families() {
        let rows = tab5_rows(Scale::Tiny, Some(&["girl"]), 2, &ResilienceConfig::default(), None)
            .expect("known video");
        assert_eq!(rows.len(), 2);
        assert_eq!(tab5_table(&rows).len(), 2);
    }

    #[test]
    fn unknown_videos_are_typed_errors() {
        assert_eq!(
            uarch_rows(Scale::Tiny, Some(&["nope"])).unwrap_err(),
            ExperimentError::UnknownVideo("nope".to_string())
        );
        assert_eq!(
            tab4_rows(Scale::Tiny, Some(&["nope"]), 2, &ResilienceConfig::default(), None)
                .unwrap_err(),
            ExperimentError::UnknownVideo("nope".to_string())
        );
    }

    #[test]
    fn hw_rows_survive_transient_faults_with_retries() {
        // Inject a transient fault into the first farm job; with one
        // retry the table must come out identical to a clean run.
        let clean = tab4_rows(Scale::Tiny, Some(&["girl"]), 2, &ResilienceConfig::default(), None)
            .expect("clean run");
        let policy = ResilienceConfig::default()
            .with_max_retries(1)
            .with_fault_plan(vfault::FaultPlan::new().with_transient(0, 1));
        let faulted =
            tab4_rows(Scale::Tiny, Some(&["girl"]), 2, &policy, None).expect("retried run");
        assert_eq!(clean.len(), faulted.len());
        for (c, f) in clean.iter().zip(&faulted) {
            assert_eq!(c.score.ratios.b, f.score.ratios.b, "{}", c.name);
            assert_eq!(c.score.ratios.q, f.score.ratios.q, "{}", c.name);
        }
    }
}
