//! Benchmark harness for the vbench reproduction.
//!
//! [`experiments`] holds one driver per paper table/figure; the `tablegen`
//! binary prints them and the Criterion benches (`benches/`) time
//! representative slices of each experiment. See EXPERIMENTS.md at the
//! workspace root for a recorded full run and the paper-vs-measured
//! comparison.

#![warn(missing_docs)]

pub mod experiments;

pub use experiments::Scale;
