//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! tablegen <experiment> [--scale tiny|exp|full] [--videos a,b,c] [--workers N]
//!          [--max-retries N] [--job-deadline SECS] [--fault-plan SPEC]
//!          [--journal DIR] [--resume]
//!          [--log-level off|summary|verbose] [--trace-out <path>]
//! tablegen all [--scale tiny|exp|full]
//! ```
//!
//! `--fault-plan` injects deterministic faults into the farmed table
//! runs (spec grammar in the `vfault` docs, e.g.
//! `transient=0,seed=7`); `--max-retries` and `--job-deadline` set the
//! farm's resilience policy. A table whose batch still fails after
//! retries exits 1.
//!
//! `--journal DIR` makes the farmed tables (3/4/5 and fig9) durable:
//! each batch writes a crash-consistent journal under `DIR` (one file
//! per table, e.g. `DIR/tab3.jsonl`). With `--resume`, completed jobs
//! recorded by a previous interrupted run are CRC-verified and replayed
//! instead of re-encoded. A scripted `crash=` fault plan exits 3, the
//! simulated-crash code.
//!
//! Experiments: `fig1 fig2 fig4 fig5 fig5b fig6 fig7 fig8 fig9 tab1 tab2
//! tab2d tab3 tab4 tab5 abl fleet`. (`tab2d` is the derived-selection companion
//! of Table 2; `fig5b` is the dataset-bias overlay; `abl` the design
//! ablations.) Default scale is `tiny`; use `--scale exp` in release mode
//! for the numbers recorded in EXPERIMENTS.md. Tables 3/4/5 fan their
//! per-row transcodes out on `--workers` farm threads (`0` or omitted
//! auto-detects from the machine's available parallelism).
//! Wall-clock-timed encodes (scenario references, Table 5's chosen
//! operating points) always run serially so measured speed is free of
//! core contention — the worker count never changes a value.
//!
//! Telemetry goes to stderr and the `--trace-out` file only; table
//! output on stdout is byte-identical with tracing on or off. Exit
//! codes: 0 success, 1 runtime failure, 2 usage error, 3 simulated
//! crash (a scripted `crash=` fault fired; the journal holds the
//! completed work).

use bench::experiments as ex;
use bench::Scale;
use vbench::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: tablegen <experiment|all> [--scale tiny|exp|full] [--videos a,b,c]");
        std::process::exit(2);
    }
    let what = args[0].as_str();
    let mut scale = Scale::Tiny;
    let mut videos: Option<Vec<String>> = None;
    // 0 = auto-detect from available parallelism, resolved below.
    let mut workers = 0usize;
    let mut policy = vbench::resilience::ResilienceConfig::default();
    let mut level: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut journal_dir: Option<String> = None;
    let mut resume = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--max-retries" => {
                i += 1;
                let retries = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--max-retries takes an integer"));
                policy = policy.with_max_retries(retries);
            }
            "--job-deadline" => {
                i += 1;
                let secs: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&s| s > 0.0)
                    .unwrap_or_else(|| die("--job-deadline takes positive seconds"));
                policy = policy.with_job_deadline(secs);
            }
            "--fault-plan" => {
                i += 1;
                let spec = args.get(i).unwrap_or_else(|| die("--fault-plan takes a spec"));
                let plan = vfault::FaultPlan::parse(spec).unwrap_or_else(|e| die(&e.to_string()));
                policy = policy.with_fault_plan(plan);
            }
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("--scale takes tiny|exp|full"));
            }
            "--videos" => {
                i += 1;
                videos = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--videos takes a comma list"))
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                );
            }
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--workers takes an integer (0 = auto-detect)"));
            }
            "--journal" => {
                i += 1;
                journal_dir =
                    Some(args.get(i).unwrap_or_else(|| die("--journal takes a directory")).clone());
            }
            "--resume" => resume = true,
            "--log-level" => {
                i += 1;
                level = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--log-level takes off|summary|verbose"))
                        .clone(),
                );
            }
            "--trace-out" => {
                i += 1;
                trace_out =
                    Some(args.get(i).unwrap_or_else(|| die("--trace-out takes a path")).clone());
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if workers == 0 {
        workers =
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(4);
    }
    // Shared tracing init: a trace file with the level still off is
    // lifted to summary, and `--trace-out` is stashed for the flush.
    cli::init_tracing("tablegen", level.as_deref(), trace_out);
    // Reject unknown names up front, before minutes of work run: a typo
    // in --videos is a usage error, not a mid-run panic.
    if let Some(v) = &videos {
        let s = ex::suite(scale);
        for name in v {
            if s.by_name(name).is_none() {
                die(&format!("no suite video '{name}' (see `tablegen tab2`)"));
            }
        }
    }
    let names: Option<Vec<&str>> = videos.as_ref().map(|v| v.iter().map(String::as_str).collect());
    let names = names.as_deref();

    if resume && journal_dir.is_none() {
        die("--resume requires --journal");
    }
    if let Some(dir) = &journal_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            die(&format!("create journal dir {dir}: {e}"));
        }
    }
    // One journal file per farmed table: a journal is scoped to a single
    // batch manifest, so tables must not share one.
    let table_journal = |table: &str| {
        journal_dir.as_ref().map(|dir| {
            vbench::JournalConfig::new(format!("{dir}/{table}.jsonl")).with_resume(resume)
        })
    };

    let all = what == "all";
    let mut ran = false;
    let mut section = |id: &str, title: &str, body: &mut dyn FnMut() -> String| {
        if all || what == id {
            let mut span = vtrace::span("tablegen.section");
            if span.id().is_some() {
                span.record("id", id);
            }
            println!("== {id}: {title} ==");
            println!("{}", body());
            ran = true;
        }
    };

    section("fig1", "upload growth vs CPU growth", &mut || ex::fig1_table().to_string());
    section("fig2", "rate-distortion-speed curves", &mut || ex::fig2_rd_curves(scale).to_string());
    section("fig4", "dataset coverage of the corpus", &mut || ex::fig4_coverage().to_string());
    section("tab1", "scoring functions", &mut || ex::tab1_table().to_string());
    section("tab2", "the vbench suite (published vs measured entropy)", &mut || {
        ex::tab2_table(scale).to_string()
    });
    section("tab2d", "suite derived by k-means from the synthetic corpus", &mut || {
        ex::tab2_derived_selection().to_string()
    });
    section("fig5b", "dataset bias in microarchitecture trends", &mut || {
        ex::fig5_bias_table(scale, 9).to_string()
    });
    section("abl", "ablations: deblocking filter, entropy backend", &mut || {
        ex::ablation_table(scale).to_string()
    });
    section("fleet", "fleet sizing and dollar cost across the instance catalog", &mut || {
        ex::fleet_table(scale).to_string()
    });

    // Figures 5-8 share one set of simulator runs.
    if all || ["fig5", "fig6", "fig7", "fig8"].contains(&what) {
        let rows = ex::uarch_rows(scale, names).unwrap_or_else(|e| fail(&e.to_string()));
        let mut usection = |id: &str, title: &str, table: vbench::report::TextTable| {
            if all || what == id {
                let mut span = vtrace::span("tablegen.section");
                if span.id().is_some() {
                    span.record("id", id);
                }
                println!("== {id}: {title} ==");
                println!("{table}");
                ran = true;
            }
        };
        usection("fig5", "cache/branch MPKI vs entropy", ex::fig5_table(&rows));
        usection("fig6", "Top-Down breakdown", ex::fig6_table(&rows));
        usection("fig7", "scalar vs AVX2 fraction", ex::fig7_table(&rows));
        usection("fig8", "ISA ladder", ex::fig8_table(&rows));
    }

    // Tables 3/4 and Figure 9 share the hardware runs.
    if all || ["tab3", "fig9"].contains(&what) {
        let vod = ex::tab3_rows(scale, names, workers, &policy, table_journal("tab3").as_ref())
            .unwrap_or_else(|e| fail_batch(e));
        if all || what == "tab3" {
            println!("== tab3: NVENC/QSV on VOD ==");
            println!("{}", ex::tab3_table(&vod));
            ran = true;
        }
        if all || what == "fig9" {
            let live =
                ex::tab4_rows(scale, names, workers, &policy, table_journal("fig9-live").as_ref())
                    .unwrap_or_else(|e| fail_batch(e));
            println!("== fig9: hardware scatter (VOD and Live) ==");
            println!("{}", ex::fig9_table(&vod, &live));
            ran = true;
        }
    }
    if all || what == "tab4" {
        let live = ex::tab4_rows(scale, names, workers, &policy, table_journal("tab4").as_ref())
            .unwrap_or_else(|e| fail_batch(e));
        println!("== tab4: NVENC/QSV on Live ==");
        println!("{}", ex::tab4_table(&live));
        ran = true;
    }
    if all || what == "tab5" {
        let rows = ex::tab5_rows(scale, names, workers, &policy, table_journal("tab5").as_ref())
            .unwrap_or_else(|e| fail_batch(e));
        println!("== tab5: next-generation software on Popular ==");
        println!("{}", ex::tab5_table(&rows));
        ran = true;
    }

    if !ran {
        die(&format!("unknown experiment '{what}'"));
    }

    finish_tracing();
}

/// Flushes the trace through the shared [`cli`] plumbing. Stdout is
/// never touched, so table output stays byte-identical.
fn finish_tracing() {
    cli::finish_tracing("tablegen");
}

/// Usage error: bad command line. Exit 2, before any work ran.
fn die(msg: &str) -> ! {
    cli::die("tablegen", msg)
}

/// Runtime failure (a transcode or batch failed): trace flushed, exit 1
/// — distinct from usage errors so scripts and CI can tell them apart.
fn fail(msg: &str) -> ! {
    cli::fail("tablegen", msg)
}

/// Failure handler for the farmed (journalable) tables: a scripted
/// crash fault exits 3 — the work already journaled survives and
/// `--resume` completes it — everything else is an ordinary runtime
/// failure.
fn fail_batch(e: ex::ExperimentError) -> ! {
    if let ex::ExperimentError::SimulatedCrash(msg) = &e {
        vtrace::error("tablegen", msg);
        finish_tracing();
        std::process::exit(cli::EXIT_CRASH);
    }
    fail(&e.to_string())
}
