//! Video quality metrics: MSE, PSNR and SSIM.
//!
//! The paper evaluates fidelity with average YCbCr PSNR (Section 2.3); this
//! module implements that metric exactly (per-plane PSNR averaged with 4:1:1
//! sample-count weights for 4:2:0 video) plus plain per-plane PSNR and a
//! luma SSIM implementation for cross-checking.

use crate::{Frame, Plane, Video};

/// PSNR value (in dB) assigned to numerically identical content, where the
/// true value is +∞. 8-bit video cannot meaningfully exceed this.
pub const PSNR_IDENTICAL_DB: f64 = 100.0;

/// Mean squared error between two planes.
///
/// # Panics
///
/// Panics if the planes have different dimensions.
///
/// ```
/// use vframe::Plane;
/// use vframe::metrics::mse_plane;
/// let a = Plane::filled(4, 4, 10);
/// let b = Plane::filled(4, 4, 13);
/// assert!((mse_plane(&a, &b) - 9.0).abs() < 1e-12);
/// ```
pub fn mse_plane(a: &Plane, b: &Plane) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "MSE requires equally sized planes"
    );
    let sum: u64 = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| {
            let d = i64::from(x) - i64::from(y);
            (d * d) as u64
        })
        .sum();
    sum as f64 / a.data().len() as f64
}

/// PSNR in dB between two planes: `10·log10(255² / MSE)`.
///
/// Returns [`PSNR_IDENTICAL_DB`] when the planes are identical.
///
/// # Panics
///
/// Panics if the planes have different dimensions.
pub fn psnr_plane(a: &Plane, b: &Plane) -> f64 {
    mse_to_psnr(mse_plane(a, b))
}

/// Converts an MSE value to PSNR in dB, saturating at
/// [`PSNR_IDENTICAL_DB`] for zero error.
pub fn mse_to_psnr(mse: f64) -> f64 {
    if mse <= 0.0 {
        PSNR_IDENTICAL_DB
    } else {
        (10.0 * (255.0f64 * 255.0 / mse).log10()).min(PSNR_IDENTICAL_DB)
    }
}

/// Average YCbCr PSNR of one frame pair — the paper's quality metric.
///
/// For 4:2:0 video the luma plane holds 4× the samples of each chroma
/// plane, so the per-plane PSNRs are combined with weights 4:1:1.
///
/// # Panics
///
/// Panics if the frames have different resolutions.
pub fn psnr_ycbcr(a: &Frame, b: &Frame) -> f64 {
    assert_eq!(a.resolution(), b.resolution(), "PSNR requires equal resolutions");
    let y = psnr_plane(a.y(), b.y());
    let u = psnr_plane(a.u(), b.u());
    let v = psnr_plane(a.v(), b.v());
    (4.0 * y + u + v) / 6.0
}

/// Average YCbCr PSNR over a whole clip (frame PSNRs averaged), the quality
/// number reported by every vbench measurement.
///
/// # Panics
///
/// Panics if the videos differ in frame count or resolution.
pub fn psnr_video(a: &Video, b: &Video) -> f64 {
    assert_eq!(a.len(), b.len(), "videos must have the same frame count");
    let total: f64 = a.iter().zip(b.iter()).map(|(fa, fb)| psnr_ycbcr(fa, fb)).sum();
    total / a.len() as f64
}

/// Incremental clip PSNR for the streaming data path: per-frame
/// [`psnr_ycbcr`] values are banked as frames are coded (in any order —
/// encoders code B frames out of display order) and averaged in display
/// order at the end, so [`PsnrAccumulator::finish`] is bit-identical to
/// [`psnr_video`] over the materialized clips. Only the `f64` per frame is
/// retained; neither clip stays resident.
#[derive(Clone, Debug)]
pub struct PsnrAccumulator {
    per_frame: Vec<Option<f64>>,
}

impl PsnrAccumulator {
    /// Creates an accumulator for a clip of `frames` frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn new(frames: usize) -> PsnrAccumulator {
        assert!(frames > 0, "a clip needs at least one frame");
        PsnrAccumulator { per_frame: vec![None; frames] }
    }

    /// Banks the PSNR of frame `display` (source vs reconstruction).
    ///
    /// # Panics
    ///
    /// Panics if `display` is out of range, was already banked, or the
    /// frames differ in resolution.
    pub fn push(&mut self, display: usize, source: &Frame, recon: &Frame) {
        let slot = &mut self.per_frame[display];
        assert!(slot.is_none(), "frame {display} banked twice");
        *slot = Some(psnr_ycbcr(source, recon));
    }

    /// Frames banked so far.
    pub fn banked(&self) -> usize {
        self.per_frame.iter().filter(|v| v.is_some()).count()
    }

    /// The clip PSNR: the display-order average of the banked per-frame
    /// values, summed in exactly the order [`psnr_video`] sums them.
    ///
    /// # Panics
    ///
    /// Panics if any frame was never banked.
    pub fn finish(&self) -> f64 {
        let total: f64 = self
            .per_frame
            .iter()
            .enumerate()
            .map(|(d, v)| v.unwrap_or_else(|| panic!("frame {d} never banked")))
            .sum();
        total / self.per_frame.len() as f64
    }
}

/// Structural similarity (SSIM) between two luma planes, computed over 8×8
/// windows with the standard `k1 = 0.01`, `k2 = 0.03` constants.
///
/// Returns a value in `[-1, 1]`; 1 means identical. Provided as the
/// "perceptual" alternative the paper discusses (and discards in favour of
/// PSNR) in Section 2.3.
///
/// # Panics
///
/// Panics if the planes differ in size or are smaller than 8×8.
pub fn ssim_luma(a: &Plane, b: &Plane) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "SSIM requires equally sized planes"
    );
    assert!(a.width() >= 8 && a.height() >= 8, "SSIM window is 8x8");
    const C1: f64 = (0.01 * 255.0) * (0.01 * 255.0);
    const C2: f64 = (0.03 * 255.0) * (0.03 * 255.0);
    let mut total = 0.0;
    let mut windows = 0usize;
    let mut wy = 0;
    while wy + 8 <= a.height() {
        let mut wx = 0;
        while wx + 8 <= a.width() {
            let (ma, mb, va, vb, cov) = window_stats(a, b, wx, wy);
            let s = ((2.0 * ma * mb + C1) * (2.0 * cov + C2))
                / ((ma * ma + mb * mb + C1) * (va + vb + C2));
            total += s;
            windows += 1;
            wx += 8;
        }
        wy += 8;
    }
    total / windows as f64
}

fn window_stats(a: &Plane, b: &Plane, wx: usize, wy: usize) -> (f64, f64, f64, f64, f64) {
    let mut sa = 0.0;
    let mut sb = 0.0;
    for y in wy..wy + 8 {
        for x in wx..wx + 8 {
            sa += f64::from(a.get(x, y));
            sb += f64::from(b.get(x, y));
        }
    }
    let n = 64.0;
    let (ma, mb) = (sa / n, sb / n);
    let (mut va, mut vb, mut cov) = (0.0, 0.0, 0.0);
    for y in wy..wy + 8 {
        for x in wx..wx + 8 {
            let da = f64::from(a.get(x, y)) - ma;
            let db = f64::from(b.get(x, y)) - mb;
            va += da * da;
            vb += db * db;
            cov += da * db;
        }
    }
    (ma, mb, va / n, vb / n, cov / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Frame, Resolution};

    #[test]
    fn identical_planes_saturate() {
        let p = Plane::filled(16, 16, 77);
        assert_eq!(psnr_plane(&p, &p), PSNR_IDENTICAL_DB);
        assert_eq!(mse_plane(&p, &p), 0.0);
    }

    #[test]
    fn known_psnr_value() {
        // MSE of 1.0 -> 10*log10(65025) = 48.13 dB.
        let a = Plane::filled(8, 8, 100);
        let b = Plane::filled(8, 8, 101);
        let q = psnr_plane(&a, &b);
        assert!((q - 48.130_803_608_679_34).abs() < 1e-9, "{q}");
    }

    #[test]
    fn psnr_is_symmetric() {
        let a = Plane::from_data(2, 2, vec![0, 50, 100, 150]);
        let b = Plane::from_data(2, 2, vec![10, 40, 110, 140]);
        assert_eq!(psnr_plane(&a, &b), psnr_plane(&b, &a));
    }

    #[test]
    fn ycbcr_weighting_is_4_1_1() {
        let res = Resolution::new(16, 16);
        let a = Frame::filled(res, 100, 100, 100);
        // Distort only chroma: weighted average dampens the chroma error 3x
        // versus an unweighted mean.
        let b = Frame::filled(res, 100, 110, 110);
        let q = psnr_ycbcr(&a, &b);
        let chroma = psnr_plane(a.u(), b.u());
        let expected = (4.0 * PSNR_IDENTICAL_DB + 2.0 * chroma) / 6.0;
        assert!((q - expected).abs() < 1e-12);
    }

    #[test]
    fn ssim_identical_is_one() {
        let p = Plane::filled(16, 16, 42);
        assert!((ssim_luma(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ssim_decreases_with_distortion() {
        let base: Vec<u8> = (0..256).map(|i| (i % 251) as u8).collect();
        let a = Plane::from_data(16, 16, base.clone());
        let mild = Plane::from_data(16, 16, base.iter().map(|&s| s.saturating_add(5)).collect());
        let heavy = Plane::from_data(16, 16, base.iter().map(|&s| s.wrapping_mul(3)).collect());
        let s_mild = ssim_luma(&a, &mild);
        let s_heavy = ssim_luma(&a, &heavy);
        assert!(s_mild > s_heavy, "mild {s_mild} vs heavy {s_heavy}");
    }

    #[test]
    fn accumulator_matches_psnr_video_bit_for_bit() {
        let res = Resolution::new(16, 16);
        let a =
            Video::new((0..5u8).map(|t| Frame::filled(res, 40 + 3 * t, 128, 128)).collect(), 30.0);
        let b =
            Video::new((0..5u8).map(|t| Frame::filled(res, 41 + 4 * t, 127, 129)).collect(), 30.0);
        let mut acc = PsnrAccumulator::new(5);
        // Bank out of display order, the way a B-frame encoder codes.
        for d in [0usize, 2, 1, 4, 3] {
            acc.push(d, a.frame(d), b.frame(d));
        }
        assert_eq!(acc.banked(), 5);
        assert_eq!(acc.finish(), psnr_video(&a, &b));
    }

    #[test]
    #[should_panic(expected = "never banked")]
    fn accumulator_rejects_incomplete_finish() {
        let res = Resolution::new(16, 16);
        let f = Frame::filled(res, 10, 128, 128);
        let mut acc = PsnrAccumulator::new(2);
        acc.push(0, &f, &f);
        let _ = acc.finish();
    }

    #[test]
    fn video_psnr_averages_frames() {
        let res = Resolution::new(16, 16);
        let a = Video::new(vec![Frame::filled(res, 50, 128, 128); 3], 30.0);
        let b = Video::new(vec![Frame::filled(res, 52, 128, 128); 3], 30.0);
        let per_frame = psnr_ycbcr(a.frame(0), b.frame(0));
        assert!((psnr_video(&a, &b) - per_frame).abs() < 1e-12);
    }
}
