//! Optional pre-processing filters.
//!
//! Section 2.1 of the paper: "Denoising is another optional operation that
//! can be applied to increase video compressability by reducing high
//! frequency components". This module implements a separable spatial
//! denoiser plus a motion-free temporal blend — the classic cheap
//! pre-filter a transcoding pipeline may run before encoding noisy
//! uploads.

use crate::{Frame, Plane, Video};

/// Spatially denoises a plane with a 3×3 binomial kernel, blended with the
/// original by `strength` (0 = identity, 1 = fully filtered).
///
/// # Panics
///
/// Panics if `strength` is outside `[0, 1]`.
pub fn denoise_plane(plane: &Plane, strength: f64) -> Plane {
    assert!((0.0..=1.0).contains(&strength), "strength must be in [0,1]");
    if strength == 0.0 {
        return plane.clone();
    }
    let (w, h) = (plane.width(), plane.height());
    let mut out = Plane::filled(w, h, 0);
    for y in 0..h {
        for x in 0..w {
            // 3x3 binomial: weights 1-2-1 / 2-4-2 / 1-2-1 (sum 16).
            let mut acc = 0i32;
            for (dy, wy) in [(-1i32, 1i32), (0, 2), (1, 1)] {
                for (dx, wx) in [(-1i32, 1i32), (0, 2), (1, 1)] {
                    let s = plane.get_clamped(x as isize + dx as isize, y as isize + dy as isize);
                    acc += i32::from(s) * wx * wy;
                }
            }
            let filtered = f64::from((acc + 8) / 16);
            let orig = f64::from(plane.get(x, y));
            let v = orig + (filtered - orig) * strength;
            out.set(x, y, v.round().clamp(0.0, 255.0) as u8);
        }
    }
    out
}

/// Denoises one frame (luma fully, chroma at half strength — chroma noise
/// is less visible and over-filtering it bleeds colors).
pub fn denoise_frame(frame: &Frame, strength: f64) -> Frame {
    Frame::from_planes(
        frame.resolution(),
        denoise_plane(frame.y(), strength),
        denoise_plane(frame.u(), strength * 0.5),
        denoise_plane(frame.v(), strength * 0.5),
    )
}

/// Denoises a clip: spatial filtering per frame plus an optional temporal
/// blend of `temporal` toward the previous *original* frame (0 disables).
/// Temporal blending attacks exactly the temporally-uncorrelated sensor
/// noise that defeats inter prediction.
///
/// # Panics
///
/// Panics if either strength is outside `[0, 1]`.
pub fn denoise_video(video: &Video, spatial: f64, temporal: f64) -> Video {
    assert!((0.0..=1.0).contains(&temporal), "temporal strength must be in [0,1]");
    let frames: Vec<Frame> = video
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut frame = denoise_frame(f, spatial);
            if temporal > 0.0 && i > 0 {
                frame = blend(&frame, video.frame(i - 1), temporal * 0.5);
            }
            frame
        })
        .collect();
    Video::new(frames, video.fps())
}

/// Blends `a` toward `b` by weight `w`.
fn blend(a: &Frame, b: &Frame, w: f64) -> Frame {
    let mix = |pa: &Plane, pb: &Plane| {
        let data = pa
            .data()
            .iter()
            .zip(pb.data())
            .map(|(&x, &y)| {
                (f64::from(x) * (1.0 - w) + f64::from(y) * w).round().clamp(0.0, 255.0) as u8
            })
            .collect();
        Plane::from_data(pa.width(), pa.height(), data)
    };
    Frame::from_planes(a.resolution(), mix(a.y(), b.y()), mix(a.u(), b.u()), mix(a.v(), b.v()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Resolution;

    fn noisy_plane() -> Plane {
        let mut p = Plane::filled(16, 16, 128);
        let mut x = 7u64;
        for y in 0..16 {
            for xx in 0..16 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let n = ((x >> 33) % 61) as i32 - 30;
                p.set(xx, y, (128 + n).clamp(0, 255) as u8);
            }
        }
        p
    }

    #[test]
    fn zero_strength_is_identity() {
        let p = noisy_plane();
        assert_eq!(denoise_plane(&p, 0.0), p);
    }

    #[test]
    fn denoising_reduces_variance() {
        let p = noisy_plane();
        let d = denoise_plane(&p, 1.0);
        assert!(d.variance() < p.variance() * 0.6, "{} vs {}", d.variance(), p.variance());
    }

    #[test]
    fn flat_plane_is_unchanged() {
        let p = Plane::filled(8, 8, 200);
        assert_eq!(denoise_plane(&p, 1.0), p);
    }

    #[test]
    fn stronger_filtering_smooths_more() {
        let p = noisy_plane();
        let weak = denoise_plane(&p, 0.3);
        let strong = denoise_plane(&p, 1.0);
        assert!(strong.variance() < weak.variance());
    }

    #[test]
    fn video_denoise_preserves_shape() {
        let res = Resolution::new(16, 16);
        let v = Video::new(vec![Frame::filled(res, 100, 128, 128); 4], 30.0);
        let d = denoise_video(&v, 0.8, 0.5);
        assert_eq!(d.len(), 4);
        assert_eq!(d.resolution(), res);
    }

    #[test]
    #[should_panic(expected = "strength must be in")]
    fn out_of_range_strength_rejected() {
        let _ = denoise_plane(&Plane::filled(4, 4, 0), 1.5);
    }
}
