//! Picture rescaling.
//!
//! Every upload "must be converted to a range of resolutions, formats,
//! and bitrates to suit varied viewer capabilities" (Section 1 of the
//! paper) — the downscaler is the substrate of that fan-out. Bilinear
//! sampling with edge clamping; deterministic.

use crate::{Frame, Plane, Resolution, Video};

/// Resizes a plane to `new_w × new_h` with bilinear interpolation.
///
/// # Panics
///
/// Panics if either target dimension is zero.
pub fn resize_plane(src: &Plane, new_w: usize, new_h: usize) -> Plane {
    assert!(new_w > 0 && new_h > 0, "target dimensions must be non-zero");
    if new_w == src.width() && new_h == src.height() {
        return src.clone();
    }
    let mut out = Plane::filled(new_w, new_h, 0);
    // Pixel-center alignment: output pixel (x, y) samples source at
    // ((x + 0.5) * sx - 0.5, (y + 0.5) * sy - 0.5).
    let sx = src.width() as f64 / new_w as f64;
    let sy = src.height() as f64 / new_h as f64;
    for y in 0..new_h {
        let fy = (y as f64 + 0.5) * sy - 0.5;
        let y0 = fy.floor();
        let wy = fy - y0;
        for x in 0..new_w {
            let fx = (x as f64 + 0.5) * sx - 0.5;
            let x0 = fx.floor();
            let wx = fx - x0;
            let (xi, yi) = (x0 as isize, y0 as isize);
            let p00 = f64::from(src.get_clamped(xi, yi));
            let p01 = f64::from(src.get_clamped(xi + 1, yi));
            let p10 = f64::from(src.get_clamped(xi, yi + 1));
            let p11 = f64::from(src.get_clamped(xi + 1, yi + 1));
            let v = p00 * (1.0 - wx) * (1.0 - wy)
                + p01 * wx * (1.0 - wy)
                + p10 * (1.0 - wx) * wy
                + p11 * wx * wy;
            out.set(x, y, v.round().clamp(0.0, 255.0) as u8);
        }
    }
    out
}

/// Resizes a frame to a new resolution (luma bilinear, chroma bilinear at
/// half dimensions).
pub fn resize_frame(src: &Frame, target: Resolution) -> Frame {
    let (w, h) = (target.width() as usize, target.height() as usize);
    Frame::from_planes(
        target,
        resize_plane(src.y(), w, h),
        resize_plane(src.u(), w / 2, h / 2),
        resize_plane(src.v(), w / 2, h / 2),
    )
}

/// Resizes every frame of a clip.
pub fn resize_video(src: &Video, target: Resolution) -> Video {
    let frames = src.iter().map(|f| resize_frame(f, target)).collect();
    Video::new(frames, src.fps())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: usize, h: usize) -> Plane {
        let mut p = Plane::filled(w, h, 0);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, ((x * 255) / (w - 1).max(1)) as u8);
            }
        }
        p
    }

    #[test]
    fn identity_resize_is_exact() {
        let p = gradient(16, 12);
        assert_eq!(resize_plane(&p, 16, 12), p);
    }

    #[test]
    fn flat_plane_stays_flat() {
        let p = Plane::filled(32, 32, 77);
        let d = resize_plane(&p, 13, 9);
        assert!(d.data().iter().all(|&s| s == 77));
    }

    #[test]
    fn downscaled_gradient_stays_monotone() {
        let p = gradient(64, 8);
        let d = resize_plane(&p, 16, 4);
        for y in 0..4 {
            for x in 1..16 {
                assert!(d.get(x, y) >= d.get(x - 1, y), "gradient broke at {x},{y}");
            }
        }
        // Ends are close to the original extremes.
        assert!(d.get(0, 0) < 32);
        assert!(d.get(15, 0) > 223);
    }

    #[test]
    fn upscale_then_downscale_approximates_identity() {
        let p = gradient(16, 16);
        let up = resize_plane(&p, 64, 64);
        let back = resize_plane(&up, 16, 16);
        for y in 0..16 {
            for x in 0..16 {
                let d = (i16::from(p.get(x, y)) - i16::from(back.get(x, y))).abs();
                assert!(d <= 6, "error {d} at {x},{y}");
            }
        }
    }

    #[test]
    fn frame_resize_keeps_chroma_geometry() {
        let src = Frame::filled(Resolution::new(64, 48), 100, 90, 160);
        let dst = resize_frame(&src, Resolution::new(32, 24));
        assert_eq!(dst.u().width(), 16);
        assert_eq!(dst.v().height(), 12);
        assert_eq!(dst.y().get(10, 10), 100);
        assert_eq!(dst.u().get(5, 5), 90);
    }

    #[test]
    fn video_resize_preserves_frame_count_and_fps() {
        let v = Video::new(vec![Frame::black(Resolution::new(32, 32)); 5], 24.0);
        let d = resize_video(&v, Resolution::new(16, 16));
        assert_eq!(d.len(), 5);
        assert_eq!(d.fps(), 24.0);
        assert_eq!(d.resolution(), Resolution::new(16, 16));
    }
}
