//! A single 8-bit sample plane.

use std::fmt;

/// One row-major plane of 8-bit samples (luma or one chroma component).
///
/// The plane owns its storage; `width * height` samples, no padding rows.
/// Out-of-bounds reads are served by edge clamping via [`Plane::get_clamped`],
/// which is the extension behaviour motion compensation in `vcodec` relies
/// on (matching the unrestricted-motion-vector edge extension of H.264).
///
/// ```
/// use vframe::Plane;
/// let mut p = Plane::filled(4, 2, 7);
/// p.set(3, 1, 250);
/// assert_eq!(p.get(3, 1), 250);
/// assert_eq!(p.get_clamped(100, -5), p.get(3, 0));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Plane {
    /// Creates a plane filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(width: usize, height: usize, value: u8) -> Plane {
        assert!(width > 0 && height > 0, "plane must be non-empty");
        Plane { width, height, data: vec![value; width * height] }
    }

    /// Creates a plane from existing row-major samples.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or either dimension is zero.
    pub fn from_data(width: usize, height: usize, data: Vec<u8>) -> Plane {
        assert!(width > 0 && height > 0, "plane must be non-empty");
        assert_eq!(data.len(), width * height, "sample count must match dimensions");
        Plane { width, height, data }
    }

    /// Plane width in samples.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in samples.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Immutable view of the raw samples, row-major.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the raw samples, row-major.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "plane access out of bounds");
        self.data[y * self.width + x]
    }

    /// Sample at `(x, y)` with coordinates clamped to the plane edges, the
    /// standard picture-boundary extension used by motion compensation.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Writes `value` at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "plane access out of bounds");
        self.data[y * self.width + x] = value;
    }

    /// One row of samples.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row(&self, y: usize) -> &[u8] {
        assert!(y < self.height, "row out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Mutable access to one row of samples.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [u8] {
        assert!(y < self.height, "row out of bounds");
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// Fills the whole plane with `value`.
    pub fn fill(&mut self, value: u8) {
        self.data.fill(value);
    }

    /// Mean sample value, as `f64`.
    pub fn mean(&self) -> f64 {
        self.data.iter().map(|&s| f64::from(s)).sum::<f64>() / self.data.len() as f64
    }

    /// Sample variance (population), as `f64`. A rough texture indicator used
    /// by the synthetic generators to calibrate entropy.
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        self.data
            .iter()
            .map(|&s| {
                let d = f64::from(s) - mean;
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64
    }
}

impl fmt::Debug for Plane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Plane").field("width", &self.width).field("height", &self.height).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_get_set() {
        let mut p = Plane::filled(8, 8, 0);
        p.set(7, 7, 42);
        assert_eq!(p.get(7, 7), 42);
        assert_eq!(p.get(0, 0), 0);
    }

    #[test]
    fn clamped_access_extends_edges() {
        let mut p = Plane::filled(4, 4, 0);
        p.set(0, 0, 11);
        p.set(3, 3, 22);
        assert_eq!(p.get_clamped(-10, -10), 11);
        assert_eq!(p.get_clamped(99, 99), 22);
        assert_eq!(p.get_clamped(2, 2), 0);
    }

    #[test]
    fn rows_are_contiguous() {
        let p = Plane::from_data(3, 2, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(p.row(0), &[1, 2, 3]);
        assert_eq!(p.row(1), &[4, 5, 6]);
    }

    #[test]
    fn mean_and_variance() {
        let p = Plane::from_data(2, 2, vec![0, 0, 10, 10]);
        assert!((p.mean() - 5.0).abs() < 1e-12);
        assert!((p.variance() - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sample count")]
    fn from_data_validates_len() {
        let _ = Plane::from_data(2, 2, vec![0; 5]);
    }
}
