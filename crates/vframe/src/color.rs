//! RGB ↔ YUV color conversion (BT.601 full-range) and chroma subsampling.
//!
//! Video codecs operate in YUV rather than RGB because human vision is more
//! sensitive to luminance than to color (Section 2.1 of the paper); this
//! module provides the conversions the synthetic content generators use to
//! author frames in a perceptually meaningful space.

use crate::{Frame, Plane, Resolution};

/// An 8-bit RGB pixel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Rgb {
    /// Red component.
    pub r: u8,
    /// Green component.
    pub g: u8,
    /// Blue component.
    pub b: u8,
}

impl Rgb {
    /// Creates an RGB pixel.
    pub const fn new(r: u8, g: u8, b: u8) -> Rgb {
        Rgb { r, g, b }
    }
}

/// An 8-bit YUV (YCbCr) pixel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Yuv {
    /// Luma.
    pub y: u8,
    /// Blue-difference chroma (Cb).
    pub u: u8,
    /// Red-difference chroma (Cr).
    pub v: u8,
}

impl Yuv {
    /// Creates a YUV pixel.
    pub const fn new(y: u8, u: u8, v: u8) -> Yuv {
        Yuv { y, u, v }
    }
}

/// Converts one RGB pixel to YUV (BT.601, full range).
///
/// ```
/// use vframe::color::{rgb_to_yuv, Rgb};
/// let grey = rgb_to_yuv(Rgb::new(128, 128, 128));
/// assert_eq!(grey.y, 128);
/// assert_eq!(grey.u, 128);
/// assert_eq!(grey.v, 128);
/// ```
pub fn rgb_to_yuv(p: Rgb) -> Yuv {
    let (r, g, b) = (f64::from(p.r), f64::from(p.g), f64::from(p.b));
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let u = -0.168_736 * r - 0.331_264 * g + 0.5 * b + 128.0;
    let v = 0.5 * r - 0.418_688 * g - 0.081_312 * b + 128.0;
    Yuv { y: clamp_u8(y), u: clamp_u8(u), v: clamp_u8(v) }
}

/// Converts one YUV pixel back to RGB (BT.601, full range).
///
/// The pair ([`rgb_to_yuv`], [`yuv_to_rgb`]) round-trips to within ±2 per
/// component; the loss comes from 8-bit quantization of the chroma axes.
pub fn yuv_to_rgb(p: Yuv) -> Rgb {
    let y = f64::from(p.y);
    let u = f64::from(p.u) - 128.0;
    let v = f64::from(p.v) - 128.0;
    let r = y + 1.402 * v;
    let g = y - 0.344_136 * u - 0.714_136 * v;
    let b = y + 1.772 * u;
    Rgb { r: clamp_u8(r), g: clamp_u8(g), b: clamp_u8(b) }
}

fn clamp_u8(x: f64) -> u8 {
    x.round().clamp(0.0, 255.0) as u8
}

/// Builds a YUV 4:2:0 [`Frame`] from full-resolution per-pixel YUV values
/// produced by `f(x, y)`; chroma is subsampled by 2×2 box averaging, the
/// same chroma-subsampling step every production transcode performs.
///
/// ```
/// use vframe::color::{frame_from_fn, Yuv};
/// use vframe::Resolution;
/// let f = frame_from_fn(Resolution::new(8, 8), |x, y| {
///     Yuv::new((x * 16) as u8, 128, (y * 16) as u8)
/// });
/// assert_eq!(f.y().get(4, 0), 64);
/// ```
pub fn frame_from_fn<F>(resolution: Resolution, mut f: F) -> Frame
where
    F: FnMut(u32, u32) -> Yuv,
{
    let (w, h) = (resolution.width() as usize, resolution.height() as usize);
    let mut y_plane = Plane::filled(w, h, 0);
    // Full-resolution chroma buffers, averaged down afterwards.
    let mut u_full = vec![0u16; w * h];
    let mut v_full = vec![0u16; w * h];
    for yy in 0..h {
        for xx in 0..w {
            let p = f(xx as u32, yy as u32);
            y_plane.set(xx, yy, p.y);
            u_full[yy * w + xx] = u16::from(p.u);
            v_full[yy * w + xx] = u16::from(p.v);
        }
    }
    let (cw, ch) = (w / 2, h / 2);
    let mut u_plane = Plane::filled(cw, ch, 0);
    let mut v_plane = Plane::filled(cw, ch, 0);
    for cy in 0..ch {
        for cx in 0..cw {
            let (x0, y0) = (cx * 2, cy * 2);
            let sum_u = u_full[y0 * w + x0]
                + u_full[y0 * w + x0 + 1]
                + u_full[(y0 + 1) * w + x0]
                + u_full[(y0 + 1) * w + x0 + 1];
            let sum_v = v_full[y0 * w + x0]
                + v_full[y0 * w + x0 + 1]
                + v_full[(y0 + 1) * w + x0]
                + v_full[(y0 + 1) * w + x0 + 1];
            u_plane.set(cx, cy, ((sum_u + 2) / 4) as u8);
            v_plane.set(cx, cy, ((sum_v + 2) / 4) as u8);
        }
    }
    Frame::from_planes(resolution, y_plane, u_plane, v_plane)
}

/// Builds a frame from a per-pixel RGB function, converting through
/// [`rgb_to_yuv`] and 4:2:0 subsampling.
pub fn frame_from_rgb_fn<F>(resolution: Resolution, mut f: F) -> Frame
where
    F: FnMut(u32, u32) -> Rgb,
{
    frame_from_fn(resolution, |x, y| rgb_to_yuv(f(x, y)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primaries_convert_sensibly() {
        let red = rgb_to_yuv(Rgb::new(255, 0, 0));
        assert!(red.y < 100, "red is dark in luma");
        assert!(red.v > 200, "red has high Cr");
        let white = rgb_to_yuv(Rgb::new(255, 255, 255));
        assert_eq!(white.y, 255);
        assert_eq!(white.u, 128);
        assert_eq!(white.v, 128);
    }

    #[test]
    fn rgb_yuv_roundtrip_close() {
        for &(r, g, b) in &[(0, 0, 0), (255, 255, 255), (10, 200, 60), (250, 3, 128)] {
            let orig = Rgb::new(r, g, b);
            let back = yuv_to_rgb(rgb_to_yuv(orig));
            assert!((i16::from(back.r) - i16::from(orig.r)).abs() <= 2, "{orig:?} -> {back:?}");
            assert!((i16::from(back.g) - i16::from(orig.g)).abs() <= 2, "{orig:?} -> {back:?}");
            assert!((i16::from(back.b) - i16::from(orig.b)).abs() <= 2, "{orig:?} -> {back:?}");
        }
    }

    #[test]
    fn chroma_subsampling_averages() {
        // Alternate U=0 / U=200 in a 2x2 quad: subsampled chroma is the mean.
        let f = frame_from_fn(Resolution::new(2, 2), |x, y| Yuv {
            y: 50,
            u: if (x + y) % 2 == 0 { 0 } else { 200 },
            v: 128,
        });
        assert_eq!(f.u().get(0, 0), 100);
        assert_eq!(f.v().get(0, 0), 128);
    }
}
