//! Pixel-block helpers and distortion kernels.
//!
//! Encoders in `vcodec` operate on square blocks of samples (macroblocks and
//! their subdivisions). This module provides block extraction with edge
//! clamping, block paste, and the two distortion kernels that dominate
//! encoder runtime: SAD (sum of absolute differences, used by motion search)
//! and SATD (sum of absolute Hadamard-transformed differences, used by
//! mode decision at higher effort levels).

use crate::Plane;

/// A square block of samples copied out of a plane, stored row-major as
/// `i16` so residual arithmetic cannot overflow.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    size: usize,
    data: Vec<i16>,
}

impl Block {
    /// Creates a zero block of dimension `size × size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn zero(size: usize) -> Block {
        assert!(size > 0, "block size must be non-zero");
        Block { size, data: vec![0; size * size] }
    }

    /// Creates a block from row-major samples.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != size * size`.
    pub fn from_data(size: usize, data: Vec<i16>) -> Block {
        assert_eq!(data.len(), size * size, "block data must be size^2 samples");
        Block { size, data }
    }

    /// Copies the `size × size` region of `plane` whose top-left corner is
    /// `(x, y)`; out-of-bounds samples are edge-clamped.
    pub fn copy_from(plane: &Plane, x: isize, y: isize, size: usize) -> Block {
        let mut data = Vec::with_capacity(size * size);
        for dy in 0..size as isize {
            for dx in 0..size as isize {
                data.push(i16::from(plane.get_clamped(x + dx, y + dy)));
            }
        }
        Block { size, data }
    }

    /// Block dimension (blocks are square).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Row-major samples.
    pub fn data(&self) -> &[i16] {
        &self.data
    }

    /// Mutable row-major samples.
    pub fn data_mut(&mut self) -> &mut [i16] {
        &mut self.data
    }

    /// Sample at `(x, y)` within the block.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates exceed the block size.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> i16 {
        assert!(x < self.size && y < self.size, "block access out of bounds");
        self.data[y * self.size + x]
    }

    /// Writes a sample at `(x, y)` within the block.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates exceed the block size.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: i16) {
        assert!(x < self.size && y < self.size, "block access out of bounds");
        self.data[y * self.size + x] = value;
    }

    /// Element-wise difference `self - other` (the *residual block* of
    /// Section 2.1).
    ///
    /// # Panics
    ///
    /// Panics if block sizes differ.
    pub fn residual(&self, other: &Block) -> Block {
        assert_eq!(self.size, other.size, "residual requires equal block sizes");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| a - b).collect();
        Block { size: self.size, data }
    }

    /// Element-wise sum `self + other`, saturating into `[0, 255]` —
    /// reconstruction of a predicted block plus decoded residual.
    ///
    /// # Panics
    ///
    /// Panics if block sizes differ.
    pub fn add_clamped(&self, other: &Block) -> Block {
        assert_eq!(self.size, other.size, "add requires equal block sizes");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (i32::from(a) + i32::from(b)).clamp(0, 255) as i16)
            .collect();
        Block { size: self.size, data }
    }

    /// Writes the block into `plane` at `(x, y)`, clamping samples to
    /// `[0, 255]` and clipping at the plane edges.
    pub fn paste_into(&self, plane: &mut Plane, x: usize, y: usize) {
        for dy in 0..self.size {
            let py = y + dy;
            if py >= plane.height() {
                break;
            }
            for dx in 0..self.size {
                let px = x + dx;
                if px >= plane.width() {
                    break;
                }
                plane.set(px, py, self.data[dy * self.size + dx].clamp(0, 255) as u8);
            }
        }
    }

    /// Mean absolute sample value — an activity measure used by rate
    /// control to classify block complexity.
    pub fn mean_abs(&self) -> f64 {
        self.data.iter().map(|&s| f64::from(s.unsigned_abs())).sum::<f64>() / self.data.len() as f64
    }
}

/// Sum of absolute differences between two equally sized blocks — the inner
/// loop of motion estimation, "usually the most computationally onerous
/// step" of encoding (Section 2.1).
///
/// # Panics
///
/// Panics if block sizes differ.
///
/// ```
/// use vframe::block::{sad, Block};
/// let a = Block::from_data(2, vec![10, 10, 10, 10]);
/// let b = Block::from_data(2, vec![11, 9, 10, 14]);
/// assert_eq!(sad(&a, &b), 6);
/// ```
pub fn sad(a: &Block, b: &Block) -> u64 {
    assert_eq!(a.size(), b.size(), "SAD requires equal block sizes");
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| u64::from((i32::from(x) - i32::from(y)).unsigned_abs()))
        .sum()
}

/// SAD computed directly against a plane region (avoids materializing the
/// candidate block); `(x, y)` may be out of bounds, in which case samples
/// are edge-clamped.
pub fn sad_plane(block: &Block, plane: &Plane, x: isize, y: isize) -> u64 {
    let size = block.size() as isize;
    let mut total = 0u64;
    for dy in 0..size {
        for dx in 0..size {
            let s = i32::from(plane.get_clamped(x + dx, y + dy));
            let b = i32::from(block.get(dx as usize, dy as usize));
            total += u64::from((b - s).unsigned_abs());
        }
    }
    total
}

/// Sum of absolute transformed differences over 4×4 Hadamard sub-blocks —
/// a frequency-domain distortion measure that better predicts coded cost
/// than SAD, used by higher effort levels for mode decision.
///
/// # Panics
///
/// Panics if block sizes differ or are not multiples of 4.
pub fn satd(a: &Block, b: &Block) -> u64 {
    assert_eq!(a.size(), b.size(), "SATD requires equal block sizes");
    assert!(a.size().is_multiple_of(4), "SATD operates on 4x4 sub-blocks");
    let mut total = 0u64;
    let size = a.size();
    for by in (0..size).step_by(4) {
        for bx in (0..size).step_by(4) {
            let mut d = [[0i32; 4]; 4];
            for (y, row) in d.iter_mut().enumerate() {
                for (x, cell) in row.iter_mut().enumerate() {
                    *cell = i32::from(a.get(bx + x, by + y)) - i32::from(b.get(bx + x, by + y));
                }
            }
            total += hadamard4_cost(&d);
        }
    }
    total
}

/// 4×4 Hadamard transform magnitude of a difference block.
fn hadamard4_cost(d: &[[i32; 4]; 4]) -> u64 {
    let mut m = *d;
    // Horizontal pass.
    for row in m.iter_mut() {
        let [a, b, c, dd] = *row;
        let s0 = a + c;
        let s1 = b + dd;
        let d0 = a - c;
        let d1 = b - dd;
        *row = [s0 + s1, s0 - s1, d0 + d1, d0 - d1];
    }
    // Vertical pass: walk the four columns via the destructured rows.
    let [r0, r1, r2, r3] = &mut m;
    for (((e0, e1), e2), e3) in r0.iter_mut().zip(r1).zip(r2.iter_mut()).zip(r3) {
        let (a, b, c, dd) = (*e0, *e1, *e2, *e3);
        let s0 = a + c;
        let s1 = b + dd;
        let d0 = a - c;
        let d1 = b - dd;
        *e0 = s0 + s1;
        *e1 = s0 - s1;
        *e2 = d0 + d1;
        *e3 = d0 - d1;
    }
    m.iter().flatten().map(|&v| u64::from(v.unsigned_abs())).sum::<u64>() / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_and_paste_roundtrip() {
        let mut p = Plane::filled(8, 8, 0);
        for y in 0..8 {
            for x in 0..8 {
                p.set(x, y, (y * 8 + x) as u8);
            }
        }
        let b = Block::copy_from(&p, 2, 2, 4);
        let mut q = Plane::filled(8, 8, 0);
        b.paste_into(&mut q, 2, 2);
        for y in 2..6 {
            for x in 2..6 {
                assert_eq!(q.get(x, y), p.get(x, y));
            }
        }
    }

    #[test]
    fn copy_clamps_at_edges() {
        let p = Plane::filled(4, 4, 9);
        let b = Block::copy_from(&p, -2, -2, 4);
        assert!(b.data().iter().all(|&s| s == 9));
    }

    #[test]
    fn residual_plus_prediction_reconstructs() {
        let a = Block::from_data(2, vec![100, 50, 25, 200]);
        let pred = Block::from_data(2, vec![90, 60, 20, 210]);
        let res = a.residual(&pred);
        let rec = pred.add_clamped(&res);
        assert_eq!(rec, a);
    }

    #[test]
    fn sad_zero_for_identical() {
        let a = Block::from_data(4, (0..16).collect());
        assert_eq!(sad(&a, &a), 0);
        assert_eq!(satd(&a, &a), 0);
    }

    #[test]
    fn sad_plane_matches_block_sad() {
        let mut p = Plane::filled(8, 8, 0);
        for y in 0..8 {
            for x in 0..8 {
                p.set(x, y, ((x * 31 + y * 7) % 256) as u8);
            }
        }
        let blk = Block::copy_from(&p, 1, 1, 4);
        let cand = Block::copy_from(&p, 3, 2, 4);
        assert_eq!(sad_plane(&blk, &p, 3, 2), sad(&blk, &cand));
    }

    #[test]
    fn satd_penalizes_structured_error_less_than_sad() {
        // A constant (DC-only) difference concentrates into one Hadamard
        // coefficient: SATD < SAD. High-frequency noise spreads across
        // coefficients and is penalized more.
        let a = Block::from_data(4, vec![0; 16]);
        let dc = Block::from_data(4, vec![10; 16]);
        assert!(satd(&a, &dc) < sad(&a, &dc));
    }

    #[test]
    fn mean_abs_activity() {
        let b = Block::from_data(2, vec![-4, 4, -4, 4]);
        assert!((b.mean_abs() - 4.0).abs() < 1e-12);
    }
}
