//! Pull-based frame sources: the streaming data path's substrate.
//!
//! A [`FrameSource`] yields a clip one frame at a time, in display order,
//! plus the stream metadata (resolution, frame rate, frame count) every
//! consumer needs before the first pixel arrives. Encoders that consume a
//! source instead of a whole [`Video`] keep only a bounded window of
//! frames resident, so per-job memory is O(window) instead of O(clip).
//!
//! Sources are resettable: two-pass rate control and quality-target
//! bisection replay the clip several times, and [`FrameSource::reset`]
//! rewinds the source to frame zero so each replay sees identical pixels.

use crate::{Frame, Resolution, Video};

/// A resettable, metadata-carrying stream of frames in display order.
///
/// Implementations must be deterministic: after [`reset`](FrameSource::reset),
/// the source yields exactly the same frame sequence again. `len()` is the
/// total number of frames the source will yield per replay and must not
/// change over the source's lifetime.
pub trait FrameSource {
    /// Picture size of every frame the source yields.
    fn resolution(&self) -> Resolution;

    /// Frame rate in frames per second.
    fn fps(&self) -> f64;

    /// Total frames per replay.
    fn len(&self) -> usize;

    /// Whether the source yields no frames.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The next frame in display order, or `None` past the end.
    fn next_frame(&mut self) -> Option<Frame>;

    /// Rewinds to frame zero; the next [`next_frame`](FrameSource::next_frame)
    /// call yields the first frame again.
    fn reset(&mut self);
}

/// A [`FrameSource`] over an in-memory [`Video`]: frames are cloned out on
/// demand. This keeps every existing whole-clip caller working on the
/// streaming path (the clip is already resident, so the window bound adds
/// nothing, but the code path is identical).
#[derive(Debug)]
pub struct VideoSource<'a> {
    video: &'a Video,
    next: usize,
}

impl<'a> VideoSource<'a> {
    /// Creates a source over `video`, positioned at frame zero.
    pub fn new(video: &'a Video) -> VideoSource<'a> {
        VideoSource { video, next: 0 }
    }
}

impl FrameSource for VideoSource<'_> {
    fn resolution(&self) -> Resolution {
        self.video.resolution()
    }

    fn fps(&self) -> f64 {
        self.video.fps()
    }

    fn len(&self) -> usize {
        self.video.len()
    }

    fn next_frame(&mut self) -> Option<Frame> {
        let f = self.video.frames().get(self.next).cloned();
        if f.is_some() {
            self.next += 1;
        }
        f
    }

    fn reset(&mut self) {
        self.next = 0;
    }
}

/// Drains `source` into an in-memory [`Video`] (one full replay). The
/// escape hatch for consumers that genuinely need the whole clip — e.g.
/// the hardware-encoder models, which process complete buffers.
///
/// # Panics
///
/// Panics if the source is empty or yields fewer frames than `len()`
/// promised.
pub fn collect_video(source: &mut dyn FrameSource) -> Video {
    let fps = source.fps();
    let expected = source.len();
    let mut frames = Vec::with_capacity(expected);
    while let Some(f) = source.next_frame() {
        frames.push(f);
    }
    assert_eq!(frames.len(), expected, "source yielded fewer frames than len() promised");
    Video::new(frames, fps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn video(frames: usize) -> Video {
        let res = Resolution::new(16, 16);
        let fs = (0..frames).map(|t| Frame::filled(res, t as u8, 128, 128)).collect();
        Video::new(fs, 24.0)
    }

    #[test]
    fn video_source_yields_all_frames_in_order() {
        let v = video(4);
        let mut s = VideoSource::new(&v);
        assert_eq!(s.len(), 4);
        assert_eq!(s.resolution(), v.resolution());
        for t in 0..4 {
            assert_eq!(&s.next_frame().expect("frame"), v.frame(t), "frame {t}");
        }
        assert!(s.next_frame().is_none());
        assert!(s.next_frame().is_none(), "stays exhausted");
    }

    #[test]
    fn reset_replays_identically() {
        let v = video(3);
        let mut s = VideoSource::new(&v);
        let first: Vec<Frame> = std::iter::from_fn(|| s.next_frame()).collect();
        s.reset();
        let second: Vec<Frame> = std::iter::from_fn(|| s.next_frame()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn collect_round_trips() {
        let v = video(5);
        let mut s = VideoSource::new(&v);
        let back = collect_video(&mut s);
        assert_eq!(back.len(), v.len());
        assert_eq!(back.fps(), v.fps());
        for t in 0..v.len() {
            assert_eq!(back.frame(t), v.frame(t));
        }
    }
}
