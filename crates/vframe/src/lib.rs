//! Raw video frame infrastructure for the vbench reproduction.
//!
//! This crate provides the uncompressed-video substrate every other crate in
//! the workspace builds on:
//!
//! * [`Plane`] — a single 8-bit sample plane with row-major storage,
//! * [`Frame`] — a YUV 4:2:0 picture (one luma plane, two half-resolution
//!   chroma planes),
//! * [`Video`] — a sequence of frames with a frame rate,
//! * [`Resolution`] — typed width × height with the kilopixel helpers the
//!   paper's category definition uses,
//! * [`color`] — RGB ↔ YUV (BT.601) conversion and chroma subsampling,
//! * [`metrics`] — MSE, PSNR (per plane and YCbCr-weighted) and SSIM,
//! * [`filter`] — optional denoising pre-filters (spatial + temporal),
//! * [`scale`] — bilinear rescaling (the ABR-ladder fan-out substrate),
//! * [`source`] — pull-based [`FrameSource`] streams for the bounded-memory
//!   data path,
//! * [`block`] — block copy/paste and SAD / SATD distortion kernels used by
//!   the encoders in `vcodec`.
//!
//! # Example
//!
//! ```
//! use vframe::{Frame, Resolution};
//! use vframe::metrics::psnr_ycbcr;
//!
//! let res = Resolution::new(64, 48);
//! let a = Frame::filled(res, 100, 128, 128);
//! let mut b = a.clone();
//! b.y_mut().fill(104); // distort the luma plane slightly
//! let q = psnr_ycbcr(&a, &b);
//! assert!(q > 30.0 && q < 80.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod block;
pub mod color;
pub mod filter;
pub mod metrics;
mod plane;
pub mod scale;
pub mod source;

pub use plane::Plane;
pub use source::{FrameSource, VideoSource};

use std::fmt;

/// A picture size in pixels.
///
/// Both dimensions must be even so that a YUV 4:2:0 [`Frame`] has exact
/// half-resolution chroma planes; [`Resolution::new`] enforces this.
///
/// ```
/// use vframe::Resolution;
/// let hd = Resolution::new(1920, 1080);
/// assert_eq!(hd.kpixels(), 2074);
/// assert_eq!(hd.pixels(), 1920 * 1080);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Resolution {
    width: u32,
    height: u32,
}

impl Resolution {
    /// Creates a resolution.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or odd (YUV 4:2:0 requires even
    /// dimensions).
    pub fn new(width: u32, height: u32) -> Resolution {
        assert!(width > 0 && height > 0, "resolution must be non-zero");
        assert!(
            width.is_multiple_of(2) && height.is_multiple_of(2),
            "resolution must have even dimensions for 4:2:0 chroma, got {width}x{height}"
        );
        Resolution { width, height }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total pixels per frame.
    pub fn pixels(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Resolution in kilopixels, rounded to the nearest integer — the unit
    /// used by the paper's video *category* definition (width × height /
    /// 1000, rounded).
    pub fn kpixels(&self) -> u32 {
        ((self.pixels() as f64) / 1000.0).round() as u32
    }

    /// 854×480 (480p), the smallest resolution in the vbench suite.
    pub const fn p480() -> Resolution {
        Resolution { width: 854, height: 480 }
    }

    /// 1280×720 (720p).
    pub const fn p720() -> Resolution {
        Resolution { width: 1280, height: 720 }
    }

    /// 1920×1080 (1080p).
    pub const fn p1080() -> Resolution {
        Resolution { width: 1920, height: 1080 }
    }

    /// 3840×2160 (2160p / 4K).
    pub const fn p2160() -> Resolution {
        Resolution { width: 3840, height: 2160 }
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// A YUV 4:2:0 picture: full-resolution luma (Y) and half-resolution chroma
/// (Cb, Cr — called U and V throughout).
///
/// ```
/// use vframe::{Frame, Resolution};
/// let f = Frame::filled(Resolution::new(16, 16), 90, 120, 130);
/// assert_eq!(f.y().width(), 16);
/// assert_eq!(f.u().width(), 8);
/// assert_eq!(f.v().height(), 8);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Frame {
    resolution: Resolution,
    y: Plane,
    u: Plane,
    v: Plane,
}

impl Frame {
    /// Creates a black frame (Y = 16, U = V = 128, i.e. video-range black).
    pub fn black(resolution: Resolution) -> Frame {
        Frame::filled(resolution, 16, 128, 128)
    }

    /// Creates a frame with each plane filled with a constant sample value.
    pub fn filled(resolution: Resolution, y: u8, u: u8, v: u8) -> Frame {
        let (w, h) = (resolution.width as usize, resolution.height as usize);
        Frame {
            resolution,
            y: Plane::filled(w, h, y),
            u: Plane::filled(w / 2, h / 2, u),
            v: Plane::filled(w / 2, h / 2, v),
        }
    }

    /// Builds a frame from previously constructed planes.
    ///
    /// # Panics
    ///
    /// Panics if the plane dimensions are inconsistent with `resolution`
    /// (luma full size, chroma exactly half size).
    pub fn from_planes(resolution: Resolution, y: Plane, u: Plane, v: Plane) -> Frame {
        let (w, h) = (resolution.width as usize, resolution.height as usize);
        assert_eq!((y.width(), y.height()), (w, h), "luma plane size mismatch");
        assert_eq!((u.width(), u.height()), (w / 2, h / 2), "U plane size mismatch");
        assert_eq!((v.width(), v.height()), (w / 2, h / 2), "V plane size mismatch");
        Frame { resolution, y, u, v }
    }

    /// The frame's resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The luma plane.
    pub fn y(&self) -> &Plane {
        &self.y
    }

    /// The Cb chroma plane.
    pub fn u(&self) -> &Plane {
        &self.u
    }

    /// The Cr chroma plane.
    pub fn v(&self) -> &Plane {
        &self.v
    }

    /// Mutable access to the luma plane.
    pub fn y_mut(&mut self) -> &mut Plane {
        &mut self.y
    }

    /// Mutable access to the Cb plane.
    pub fn u_mut(&mut self) -> &mut Plane {
        &mut self.u
    }

    /// Mutable access to the Cr plane.
    pub fn v_mut(&mut self) -> &mut Plane {
        &mut self.v
    }

    /// All three planes, luma first.
    pub fn planes(&self) -> [&Plane; 3] {
        [&self.y, &self.u, &self.v]
    }

    /// Raw size of the frame in bytes (Y + U + V samples).
    pub fn raw_bytes(&self) -> usize {
        self.y.data().len() + self.u.data().len() + self.v.data().len()
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Frame")
            .field("resolution", &self.resolution)
            .field("raw_bytes", &self.raw_bytes())
            .finish()
    }
}

/// An uncompressed video clip: an ordered frame sequence plus frame rate.
///
/// ```
/// use vframe::{Frame, Resolution, Video};
/// let res = Resolution::new(32, 32);
/// let frames = vec![Frame::black(res); 10];
/// let v = Video::new(frames, 30.0);
/// assert_eq!(v.len(), 10);
/// assert!((v.duration_secs() - 10.0 / 30.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct Video {
    frames: Vec<Frame>,
    fps: f64,
}

impl Video {
    /// Creates a video from frames at the given frame rate.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty, frames disagree on resolution, or `fps`
    /// is not strictly positive and finite.
    pub fn new(frames: Vec<Frame>, fps: f64) -> Video {
        assert!(!frames.is_empty(), "a video needs at least one frame");
        assert!(fps.is_finite() && fps > 0.0, "frame rate must be positive");
        let res = frames[0].resolution();
        assert!(
            frames.iter().all(|f| f.resolution() == res),
            "all frames must share one resolution"
        );
        Video { frames, fps }
    }

    /// Frame rate in frames per second.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the clip has zero frames. Always `false` for a constructed
    /// [`Video`]; present for API completeness.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The clip's resolution.
    pub fn resolution(&self) -> Resolution {
        self.frames[0].resolution()
    }

    /// Clip duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.frames.len() as f64 / self.fps
    }

    /// Borrowed access to frame `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn frame(&self, i: usize) -> &Frame {
        &self.frames[i]
    }

    /// Iterates over the frames in display order.
    pub fn iter(&self) -> std::slice::Iter<'_, Frame> {
        self.frames.iter()
    }

    /// All frames as a slice.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Consumes the video and returns its frames.
    pub fn into_frames(self) -> Vec<Frame> {
        self.frames
    }

    /// Total raw pixel count across all frames — the numerator of the
    /// paper's *pixels per second* transcoding speed metric.
    pub fn total_pixels(&self) -> u64 {
        self.resolution().pixels() * self.frames.len() as u64
    }
}

impl<'a> IntoIterator for &'a Video {
    type Item = &'a Frame;
    type IntoIter = std::slice::Iter<'a, Frame>;

    fn into_iter(self) -> Self::IntoIter {
        self.frames.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_kpixels_matches_paper_categories() {
        assert_eq!(Resolution::p480().kpixels(), 410);
        assert_eq!(Resolution::p720().kpixels(), 922);
        assert_eq!(Resolution::p1080().kpixels(), 2074);
        assert_eq!(Resolution::p2160().kpixels(), 8294);
    }

    #[test]
    #[should_panic(expected = "even dimensions")]
    fn odd_resolution_rejected() {
        let _ = Resolution::new(31, 32);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_resolution_rejected() {
        let _ = Resolution::new(0, 2);
    }

    #[test]
    fn frame_chroma_is_half_size() {
        let f = Frame::black(Resolution::new(100, 50));
        assert_eq!(f.y().width(), 100);
        assert_eq!(f.u().width(), 50);
        assert_eq!(f.u().height(), 25);
        assert_eq!(f.raw_bytes(), 100 * 50 + 2 * 50 * 25);
    }

    #[test]
    fn video_duration() {
        let res = Resolution::new(16, 16);
        let v = Video::new(vec![Frame::black(res); 60], 24.0);
        assert!((v.duration_secs() - 2.5).abs() < 1e-12);
        assert_eq!(v.total_pixels(), 60 * 256);
    }

    #[test]
    #[should_panic(expected = "share one resolution")]
    fn mixed_resolution_video_rejected() {
        let a = Frame::black(Resolution::new(16, 16));
        let b = Frame::black(Resolution::new(32, 32));
        let _ = Video::new(vec![a, b], 30.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Resolution::p720().to_string(), "1280x720");
    }
}
