//! Property-based tests for the frame/metric substrate.

use proptest::prelude::*;
use vframe::block::{sad, satd, Block};
use vframe::metrics::{mse_plane, mse_to_psnr, psnr_plane, PSNR_IDENTICAL_DB};
use vframe::Plane;

fn plane_strategy(w: usize, h: usize) -> impl Strategy<Value = Plane> {
    prop::collection::vec(any::<u8>(), w * h).prop_map(move |d| Plane::from_data(w, h, d))
}

fn block_strategy(size: usize) -> impl Strategy<Value = Block> {
    prop::collection::vec(0i16..=255, size * size).prop_map(move |d| Block::from_data(size, d))
}

proptest! {
    #[test]
    fn psnr_is_symmetric_and_bounded(a in plane_strategy(8, 8), b in plane_strategy(8, 8)) {
        let ab = psnr_plane(&a, &b);
        let ba = psnr_plane(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!(ab <= PSNR_IDENTICAL_DB);
        // Worst case: every sample off by 255 -> MSE 255^2 -> PSNR 0.
        prop_assert!(ab >= 0.0);
    }

    #[test]
    fn mse_zero_iff_identical(a in plane_strategy(6, 6)) {
        prop_assert_eq!(mse_plane(&a, &a), 0.0);
        prop_assert_eq!(psnr_plane(&a, &a), PSNR_IDENTICAL_DB);
    }

    #[test]
    fn mse_to_psnr_is_monotone_decreasing(m1 in 0.01f64..1e4, m2 in 0.01f64..1e4) {
        let (lo, hi) = if m1 < m2 { (m1, m2) } else { (m2, m1) };
        prop_assert!(mse_to_psnr(lo) >= mse_to_psnr(hi));
    }

    #[test]
    fn residual_add_roundtrip(a in block_strategy(8), p in block_strategy(8)) {
        // a = p + (a - p), clamped; inputs are valid samples so no clamping
        // actually occurs.
        let r = a.residual(&p);
        prop_assert_eq!(p.add_clamped(&r), a);
    }

    #[test]
    fn sad_is_a_metric(a in block_strategy(4), b in block_strategy(4), c in block_strategy(4)) {
        prop_assert_eq!(sad(&a, &a), 0);
        prop_assert_eq!(sad(&a, &b), sad(&b, &a));
        // Triangle inequality.
        prop_assert!(sad(&a, &c) <= sad(&a, &b) + sad(&b, &c));
    }

    #[test]
    fn satd_zero_iff_identical_and_symmetric(a in block_strategy(4), b in block_strategy(4)) {
        prop_assert_eq!(satd(&a, &a), 0);
        prop_assert_eq!(satd(&a, &b), satd(&b, &a));
    }

    #[test]
    fn clamped_access_never_panics(
        a in plane_strategy(5, 7),
        x in -100isize..100,
        y in -100isize..100,
    ) {
        let _ = a.get_clamped(x, y);
    }

    #[test]
    fn block_copy_matches_plane_interior(
        p in plane_strategy(16, 16),
        x in 0usize..8,
        y in 0usize..8,
    ) {
        let b = Block::copy_from(&p, x as isize, y as isize, 8);
        for dy in 0..8 {
            for dx in 0..8 {
                prop_assert_eq!(b.get(dx, dy), i16::from(p.get(x + dx, y + dy)));
            }
        }
    }
}
