//! Deterministic fault injection for the transcode farm.
//!
//! Production transcoding fleets do not get to assume every encode
//! succeeds: workers crash, jobs hit poisoned inputs, machines straggle
//! (Li & Salehi's heterogeneous-cloud study shows deadline misses and
//! machine variability dominating real deployments). This crate makes
//! those failures *injectable and replayable* so the farm's resilience
//! layer — retries, panic isolation, deadlines, hedging — is testable
//! instead of aspirational.
//!
//! A [`FaultPlan`] decides, for every `(job index, attempt number)` pair,
//! whether that attempt fails with a typed error, panics, or runs with
//! artificial straggler latency. Decisions are a pure function of the
//! plan and the `(job, attempt)` key — never of wall-clock time, thread
//! identity, or execution order — so a plan replays bit-exactly at any
//! worker count. Random plans derive a per-job generator from the seed
//! via the same xoshiro256++/SplitMix64 substrate ([`rand`], the
//! workspace's `vrand` stand-in) the rest of the workspace uses.
//!
//! ```
//! use vfault::{FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::new()
//!     .with_transient(1, 1)      // job 1: fail its first attempt
//!     .with_panic(3, u32::MAX)   // job 3: panic on every attempt
//!     .with_straggler(4, 0.25);  // job 4: +250 ms of latency
//! assert_eq!(plan.decide(1, 0).fail, Some(FaultKind::Transient));
//! assert_eq!(plan.decide(1, 1).fail, None); // retry succeeds
//! assert_eq!(plan.decide(2, 0).fail, None); // untouched job
//! ```

#![warn(missing_docs)]

mod io;

pub use io::{FileClass, IoFaultKind, IoFaultPlan, IoOp};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The kinds of failure a plan can inject.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultKind {
    /// Fails a bounded number of leading attempts, then succeeds — the
    /// "try again and it works" class (OOM kill, lost lease, preemption).
    Transient,
    /// Fails every attempt — a poisoned input no retry can save.
    Permanent,
    /// Panics mid-encode instead of returning an error — the class that
    /// used to take the whole batch down.
    Panic,
    /// Succeeds, but with artificial extra latency — a straggling
    /// machine, the hedging layer's prey.
    Straggler,
}

impl FaultKind {
    /// Display name ("transient", "permanent", "panic", "straggler").
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Permanent => "permanent",
            FaultKind::Panic => "panic",
            FaultKind::Straggler => "straggler",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed injected failure: which fault fired, on which job and attempt.
/// This is what the engine's `TranscodeError::Injected` carries.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct InjectedFault {
    /// The kind of fault that fired.
    pub kind: FaultKind,
    /// The job it fired on (batch index).
    pub job: usize,
    /// The attempt it fired on (0 = first try).
    pub attempt: u32,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected {} fault (job {}, attempt {})", self.kind, self.job, self.attempt)
    }
}

impl std::error::Error for InjectedFault {}

/// What the plan tells the executor to do for one `(job, attempt)`.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Decision {
    /// Fail this attempt with the given fault. [`FaultKind::Panic`] means
    /// the executor should panic rather than return an error.
    pub fail: Option<FaultKind>,
    /// Artificial straggler latency to charge to this attempt, in
    /// seconds (0.0 = none).
    pub extra_secs: f64,
}

/// Where in the durable batch driver's per-job pipeline a scripted
/// [`FaultPlan`] crash aborts execution.
///
/// Crash faults model the failure journaling exists for: the whole
/// process dying mid-batch. They are consulted only by journaled batch
/// execution (`vbench::journal`) — the plain farm scheduler ignores them
/// — and each point pins a distinct durability window:
///
/// * `PreEncode` dies before the job ran at all (nothing of it is
///   durable);
/// * `PostEncode` dies after the encode but before its journal record
///   was written (the work is lost, the journal is clean);
/// * `PreJournalFlush` dies mid-append, after part of the record's bytes
///   reached the file but before the fsync — the torn-line case resume
///   must quarantine.
/// * `WorkerKill` is worker-scoped rather than driver-scoped: a
///   multi-process worker (`vbench worker`) consults it right after
///   winning its *first* lease on the job and kills its whole process,
///   SIGKILL-style — the case a dispatcher must recover from by
///   expiring the dead worker's lease so a survivor re-encodes the job.
///   The first-lease rule keeps the fault one-shot: the re-lease after
///   reclaim (or by a respawned worker) does not re-fire it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CrashPoint {
    /// Abort before the job's first attempt runs.
    PreEncode,
    /// Abort after the job's attempt chain finished, before any journal
    /// bytes for it were written.
    PostEncode,
    /// Abort mid-append: a torn (partial, unsynced) journal line is left
    /// behind.
    PreJournalFlush,
    /// Kill the whole worker process on its first lease of the job
    /// (multi-process execution only; the in-process driver ignores it).
    WorkerKill,
}

impl CrashPoint {
    /// Display name ("pre-encode", "post-encode", "pre-journal-flush",
    /// "worker-kill").
    pub fn name(&self) -> &'static str {
        match self {
            CrashPoint::PreEncode => "pre-encode",
            CrashPoint::PostEncode => "post-encode",
            CrashPoint::PreJournalFlush => "pre-journal-flush",
            CrashPoint::WorkerKill => "worker-kill",
        }
    }

    /// Parses a display name back into a point.
    pub fn parse(s: &str) -> Option<CrashPoint> {
        match s {
            "pre-encode" => Some(CrashPoint::PreEncode),
            "post-encode" => Some(CrashPoint::PostEncode),
            "pre-journal-flush" => Some(CrashPoint::PreJournalFlush),
            "worker-kill" => Some(CrashPoint::WorkerKill),
            _ => None,
        }
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One job's scripted fault.
#[derive(Clone, Copy, PartialEq, Debug)]
struct JobFault {
    job: usize,
    kind: FaultKind,
    /// Attempts `0..attempts` are affected (`u32::MAX` = every attempt).
    attempts: u32,
    /// Straggler latency in seconds (only meaningful for `Straggler`).
    extra_secs: f64,
}

/// One scripted process crash, fired by the journaled batch driver.
#[derive(Clone, Copy, PartialEq, Debug)]
struct CrashFault {
    job: usize,
    point: CrashPoint,
    /// Which journal run the crash fires on (0 = the first execution; a
    /// resumed run increments the count, so a crash never re-fires on
    /// resume unless scripted for that run).
    run: u32,
}

/// Knobs for seeded random fault generation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RandomFaults {
    /// Probability that a given job is faulted at all.
    pub rate: f64,
    /// Straggler latency drawn for straggler faults, in seconds.
    pub straggle_secs: f64,
}

impl Default for RandomFaults {
    fn default() -> RandomFaults {
        RandomFaults { rate: 0.1, straggle_secs: 0.25 }
    }
}

/// A deterministic fault-injection plan.
///
/// Combines explicitly scripted per-job faults with an optional seeded
/// random layer. Random faults are always *recoverable* (a transient
/// failure, a first-attempt panic, or a straggler) so a plan paired with
/// `max_retries >= 1` always completes; permanent faults must be
/// scripted explicitly.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<JobFault>,
    crashes: Vec<CrashFault>,
    seed: u64,
    random: Option<RandomFaults>,
}

impl FaultPlan {
    /// An empty plan: every decision is a no-op.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.crashes.is_empty() && self.random.is_none()
    }

    /// Scripts a transient fault: job `job` fails its first `attempts`
    /// attempts, then succeeds.
    pub fn with_transient(mut self, job: usize, attempts: u32) -> FaultPlan {
        self.faults.push(JobFault { job, kind: FaultKind::Transient, attempts, extra_secs: 0.0 });
        self
    }

    /// Scripts a permanent fault: job `job` fails every attempt.
    pub fn with_permanent(mut self, job: usize) -> FaultPlan {
        self.faults.push(JobFault {
            job,
            kind: FaultKind::Permanent,
            attempts: u32::MAX,
            extra_secs: 0.0,
        });
        self
    }

    /// Scripts a panic: job `job` panics on its first `attempts` attempts
    /// (`u32::MAX` = every attempt).
    pub fn with_panic(mut self, job: usize, attempts: u32) -> FaultPlan {
        self.faults.push(JobFault { job, kind: FaultKind::Panic, attempts, extra_secs: 0.0 });
        self
    }

    /// Scripts a straggler: every attempt of job `job` carries
    /// `extra_secs` of artificial latency.
    pub fn with_straggler(self, job: usize, extra_secs: f64) -> FaultPlan {
        self.with_transient_straggler(job, u32::MAX, extra_secs)
    }

    /// Scripts a straggler that clears: only the first `attempts`
    /// attempts of job `job` carry the extra latency — a retry (e.g.
    /// after a deadline miss) runs at full speed.
    pub fn with_transient_straggler(
        mut self,
        job: usize,
        attempts: u32,
        extra_secs: f64,
    ) -> FaultPlan {
        self.faults.push(JobFault { job, kind: FaultKind::Straggler, attempts, extra_secs });
        self
    }

    /// Scripts a process crash on the *first* journaled run: the batch
    /// driver aborts at `point` of job `job`. Resume (the second run)
    /// does not re-fire it. Only journaled execution
    /// (`vbench::journal::run_batch_journaled`) consults crash faults;
    /// the plain farm scheduler ignores them.
    pub fn with_crash(self, job: usize, point: CrashPoint) -> FaultPlan {
        self.with_crash_on_run(job, point, 0)
    }

    /// Scripts a process crash on journal run number `run` (0 = first
    /// execution, 1 = first resume, …), for multi-crash scenarios.
    pub fn with_crash_on_run(mut self, job: usize, point: CrashPoint, run: u32) -> FaultPlan {
        self.crashes.push(CrashFault { job, point, run });
        self
    }

    /// The crash the journaled driver must simulate at `job` during run
    /// `run`, if any. Pure: depends only on the plan and the key, like
    /// [`FaultPlan::decide`].
    pub fn decide_crash(&self, job: usize, run: u32) -> Option<CrashPoint> {
        self.crashes.iter().find(|c| c.job == job && c.run == run).map(|c| c.point)
    }

    /// Adds a seeded random layer: each job is independently faulted with
    /// `random.rate` probability, drawing uniformly among a transient
    /// first-attempt failure, a first-attempt panic, and a straggler.
    pub fn with_random(mut self, seed: u64, random: RandomFaults) -> FaultPlan {
        self.seed = seed;
        self.random = Some(random);
        self
    }

    /// The decision for `(job, attempt)`. Pure: depends only on the plan
    /// and the key, so any scheduler replays it identically.
    pub fn decide(&self, job: usize, attempt: u32) -> Decision {
        let mut decision = Decision::default();
        for f in self.faults.iter().filter(|f| f.job == job) {
            apply(&mut decision, f, attempt);
        }
        if let Some(random) = self.random {
            if let Some(f) = self.random_fault(job, random) {
                apply(&mut decision, &f, attempt);
            }
        }
        decision
    }

    /// The random layer's fault for `job`, derived from the seed alone.
    fn random_fault(&self, job: usize, random: RandomFaults) -> Option<JobFault> {
        // Mix the job index into the seed (SplitMix64's constant) so each
        // job gets an independent, order-free stream.
        let mixed = self.seed ^ (job as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
        let mut rng = SmallRng::seed_from_u64(mixed);
        let roll: f64 = rng.gen_range(0.0..1.0);
        if roll >= random.rate {
            return None;
        }
        // Recoverable kinds only: a seeded plan plus one retry always
        // completes (permanent faults must be scripted).
        let kind = match rng.gen_range(0..3u32) {
            0 => FaultKind::Transient,
            1 => FaultKind::Panic,
            _ => FaultKind::Straggler,
        };
        Some(match kind {
            FaultKind::Straggler => {
                JobFault { job, kind, attempts: u32::MAX, extra_secs: random.straggle_secs }
            }
            _ => JobFault { job, kind, attempts: 1, extra_secs: 0.0 },
        })
    }

    /// Parses a plan from its CLI spec: comma-separated terms.
    ///
    /// | term | meaning |
    /// |---|---|
    /// | `transient=J` or `transient=JxN` | job J fails its first 1 (or N) attempts |
    /// | `permanent=J` | job J fails every attempt |
    /// | `panic=J` or `panic=JxN` | job J panics on every (or the first N) attempts |
    /// | `straggle=J:SECS` | job J runs with SECS extra latency |
    /// | `crash=J@POINT` or `crash=J@POINT@R` | journaled run R (default 0) aborts at POINT of job J (`pre-encode`, `post-encode`, `pre-journal-flush`) |
    /// | `crash=J@worker-kill` or `crash=J@worker-kill@R` | multi-process run R kills the worker process holding the first lease on job J |
    /// | `seed=N` | seed for the random layer |
    /// | `rate=F` | enable the random layer: fault each job with probability F |
    /// | `straggle-secs=F` | random-layer straggler latency (default 0.25) |
    pub fn parse(spec: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::new();
        let mut seed = 0u64;
        let mut rate: Option<f64> = None;
        let mut straggle_secs = RandomFaults::default().straggle_secs;
        for term in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, value) =
                term.split_once('=').ok_or_else(|| PlanParseError { term: term.to_string() })?;
            let bad = || PlanParseError { term: term.to_string() };
            match key {
                "transient" => {
                    let (job, attempts) = parse_job_attempts(value, 1).ok_or_else(bad)?;
                    plan = plan.with_transient(job, attempts);
                }
                "permanent" => plan = plan.with_permanent(value.parse().map_err(|_| bad())?),
                "panic" => {
                    let (job, attempts) = parse_job_attempts(value, u32::MAX).ok_or_else(bad)?;
                    plan = plan.with_panic(job, attempts);
                }
                "straggle" => {
                    let (job, secs) = value.split_once(':').ok_or_else(bad)?;
                    plan = plan.with_straggler(
                        job.parse().map_err(|_| bad())?,
                        secs.parse().map_err(|_| bad())?,
                    );
                }
                "crash" => {
                    let (job, rest) = value.split_once('@').ok_or_else(bad)?;
                    let (point, run) = match rest.split_once('@') {
                        None => (rest, 0u32),
                        Some((point, run)) => (point, run.parse().map_err(|_| bad())?),
                    };
                    plan = plan.with_crash_on_run(
                        job.parse().map_err(|_| bad())?,
                        CrashPoint::parse(point).ok_or_else(bad)?,
                        run,
                    );
                }
                "seed" => seed = value.parse().map_err(|_| bad())?,
                "rate" => rate = Some(value.parse().map_err(|_| bad())?),
                "straggle-secs" => straggle_secs = value.parse().map_err(|_| bad())?,
                _ => return Err(bad()),
            }
        }
        if let Some(rate) = rate {
            plan = plan.with_random(seed, RandomFaults { rate, straggle_secs });
        }
        Ok(plan)
    }
}

/// Folds one scripted fault into a decision if it covers `attempt`.
fn apply(decision: &mut Decision, f: &JobFault, attempt: u32) {
    match f.kind {
        FaultKind::Straggler if attempt < f.attempts => decision.extra_secs += f.extra_secs,
        FaultKind::Straggler => {}
        // Panic outranks a plain failure: it is the harsher outcome.
        _ if attempt < f.attempts && decision.fail != Some(FaultKind::Panic) => {
            decision.fail = Some(f.kind);
        }
        _ => {}
    }
}

/// Parses `"J"` or `"JxN"` into (job, attempts).
fn parse_job_attempts(value: &str, default_attempts: u32) -> Option<(usize, u32)> {
    match value.split_once('x') {
        None => Some((value.parse().ok()?, default_attempts)),
        Some((job, attempts)) => Some((job.parse().ok()?, attempts.parse().ok()?)),
    }
}

/// A fault-plan spec term that could not be parsed.
#[derive(Clone, PartialEq, Debug)]
pub struct PlanParseError {
    /// The offending term.
    pub term: String,
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault-plan term '{}'", self.term)
    }
}

impl std::error::Error for PlanParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_a_no_op() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        for job in 0..8 {
            for attempt in 0..3 {
                assert_eq!(plan.decide(job, attempt), Decision::default());
            }
        }
    }

    #[test]
    fn transient_fault_clears_after_its_attempts() {
        let plan = FaultPlan::new().with_transient(2, 2);
        assert_eq!(plan.decide(2, 0).fail, Some(FaultKind::Transient));
        assert_eq!(plan.decide(2, 1).fail, Some(FaultKind::Transient));
        assert_eq!(plan.decide(2, 2).fail, None);
        assert_eq!(plan.decide(3, 0).fail, None);
    }

    #[test]
    fn permanent_fault_never_clears() {
        let plan = FaultPlan::new().with_permanent(0);
        assert_eq!(plan.decide(0, 0).fail, Some(FaultKind::Permanent));
        assert_eq!(plan.decide(0, 1_000).fail, Some(FaultKind::Permanent));
    }

    #[test]
    fn straggler_adds_latency_without_failing() {
        let plan = FaultPlan::new().with_straggler(1, 0.5);
        let d = plan.decide(1, 0);
        assert_eq!(d.fail, None);
        assert!((d.extra_secs - 0.5).abs() < 1e-12);
        // Latency persists across retries of the same job.
        assert!((plan.decide(1, 3).extra_secs - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transient_straggler_clears_after_its_attempts() {
        let plan = FaultPlan::new().with_transient_straggler(0, 1, 0.5);
        assert!(plan.decide(0, 0).extra_secs > 0.0);
        assert_eq!(plan.decide(0, 1).extra_secs, 0.0, "retry runs at full speed");
    }

    #[test]
    fn panic_outranks_plain_failure() {
        let plan = FaultPlan::new().with_transient(0, 1).with_panic(0, 1);
        assert_eq!(plan.decide(0, 0).fail, Some(FaultKind::Panic));
        let reversed = FaultPlan::new().with_panic(0, 1).with_transient(0, 1);
        assert_eq!(reversed.decide(0, 0).fail, Some(FaultKind::Panic));
    }

    #[test]
    fn random_plan_is_deterministic_and_order_free() {
        let plan =
            FaultPlan::new().with_random(42, RandomFaults { rate: 0.5, ..Default::default() });
        let forward: Vec<Decision> = (0..64).map(|j| plan.decide(j, 0)).collect();
        let backward: Vec<Decision> = (0..64).rev().map(|j| plan.decide(j, 0)).collect();
        let reversed: Vec<Decision> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed, "decisions must not depend on query order");
        // Roughly half the jobs should be faulted at rate 0.5.
        let faulted = forward.iter().filter(|d| d.fail.is_some() || d.extra_secs > 0.0).count();
        assert!((16..=48).contains(&faulted), "faulted {faulted}/64 at rate 0.5");
    }

    #[test]
    fn random_plans_differ_across_seeds() {
        let faults = RandomFaults { rate: 0.5, ..Default::default() };
        let a: Vec<Decision> =
            (0..64).map(|j| FaultPlan::new().with_random(1, faults).decide(j, 0)).collect();
        let b: Vec<Decision> =
            (0..64).map(|j| FaultPlan::new().with_random(2, faults).decide(j, 0)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn random_faults_are_recoverable() {
        // Every random fault either clears by attempt 1 or never fails at
        // all — the contract that lets a seeded plan finish under retry.
        let plan =
            FaultPlan::new().with_random(7, RandomFaults { rate: 1.0, ..Default::default() });
        for job in 0..128 {
            let later = plan.decide(job, 1);
            assert_eq!(later.fail, None, "job {job} still failing on attempt 1");
        }
    }

    #[test]
    fn crash_fires_only_on_its_scripted_run() {
        let plan = FaultPlan::new().with_crash(2, CrashPoint::PostEncode);
        assert!(!plan.is_empty());
        assert_eq!(plan.decide_crash(2, 0), Some(CrashPoint::PostEncode));
        assert_eq!(plan.decide_crash(2, 1), None, "resume must not re-crash");
        assert_eq!(plan.decide_crash(1, 0), None, "untouched job");
        // Crashes never leak into the plain per-attempt decision.
        assert_eq!(plan.decide(2, 0), Decision::default());
    }

    #[test]
    fn crash_on_run_targets_a_later_run() {
        let plan = FaultPlan::new().with_crash(0, CrashPoint::PreEncode).with_crash_on_run(
            1,
            CrashPoint::PreJournalFlush,
            1,
        );
        assert_eq!(plan.decide_crash(0, 0), Some(CrashPoint::PreEncode));
        assert_eq!(plan.decide_crash(1, 0), None);
        assert_eq!(plan.decide_crash(1, 1), Some(CrashPoint::PreJournalFlush));
        assert_eq!(plan.decide_crash(1, 2), None);
    }

    #[test]
    fn crash_point_names_round_trip() {
        for point in [
            CrashPoint::PreEncode,
            CrashPoint::PostEncode,
            CrashPoint::PreJournalFlush,
            CrashPoint::WorkerKill,
        ] {
            assert_eq!(CrashPoint::parse(point.name()), Some(point));
        }
        assert_eq!(CrashPoint::parse("mid-encode"), None);
    }

    #[test]
    fn parse_supports_crash_terms() {
        let plan = FaultPlan::parse("crash=3@post-encode, crash=3@pre-encode@1").expect("valid");
        assert_eq!(plan.decide_crash(3, 0), Some(CrashPoint::PostEncode));
        assert_eq!(plan.decide_crash(3, 1), Some(CrashPoint::PreEncode));
        let kill = FaultPlan::parse("crash=1@worker-kill").expect("worker-scoped kill parses");
        assert_eq!(kill.decide_crash(1, 0), Some(CrashPoint::WorkerKill));
        assert_eq!(kill.decide_crash(1, 1), None, "kill is keyed to run 0");
        for bad in ["crash=3", "crash=3@nowhere", "crash=x@pre-encode", "crash=3@pre-encode@x"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn parse_round_trips_the_readme_example() {
        let plan = FaultPlan::parse("transient=1, panic=3x1, straggle=4:0.25").expect("valid spec");
        assert_eq!(plan.decide(1, 0).fail, Some(FaultKind::Transient));
        assert_eq!(plan.decide(1, 1).fail, None);
        assert_eq!(plan.decide(3, 0).fail, Some(FaultKind::Panic));
        assert_eq!(plan.decide(3, 1).fail, None);
        assert!(plan.decide(4, 0).extra_secs > 0.0);
    }

    #[test]
    fn parse_supports_the_random_layer() {
        let plan = FaultPlan::parse("seed=9,rate=1.0,straggle-secs=0.1").expect("valid spec");
        assert!(!plan.is_empty());
        let faulted = (0..32).filter(|&j| plan.decide(j, 0) != Decision::default()).count();
        assert_eq!(faulted, 32, "rate=1.0 faults every job");
    }

    #[test]
    fn parse_rejects_malformed_terms() {
        for bad in ["bogus=1", "transient=", "straggle=1", "panic=x", "rate=lots", "transient"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn empty_spec_parses_to_empty_plan() {
        assert!(FaultPlan::parse("").expect("empty spec").is_empty());
        assert!(FaultPlan::parse(" , ").expect("whitespace spec").is_empty());
    }
}
