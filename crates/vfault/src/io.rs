//! Deterministic storage-fault injection: the IO-level sibling of
//! [`FaultPlan`](crate::FaultPlan).
//!
//! Where a `FaultPlan` decides what happens to an *encode attempt*, an
//! [`IoFaultPlan`] decides what happens to a *durable IO operation* —
//! the appends, fsyncs, and renames the write-ahead journal and status
//! snapshots are built from. Each fault is keyed on `(file class,
//! op index)`, where the index counts operations of that kind on that
//! class since the plan was armed, so a schedule replays bit-exactly:
//! the same execution issues the same op stream and hits the same
//! faults, independent of wall-clock time or thread identity.
//!
//! The taxonomy mirrors what real disks and filesystems do to
//! checkpoint stacks:
//!
//! * **short write** — a write persists only a prefix (torn record);
//! * **write EIO** — a write fails cleanly, nothing reaches the file;
//! * **ENOSPC** — the volume fills mid-write: a prefix lands, then
//!   disk-full;
//! * **fsync EIO** — the sync fails and nothing new became durable
//!   (and, per the post-fsync-gate consensus, the caller must *not*
//!   retry the fsync and trust a later Ok);
//! * **fsync lie** — the sync reports Ok but made nothing durable
//!   (lying hardware / write-cache loss): bytes past the last *honest*
//!   sync are dropped at simulated power-cut;
//! * **rename failure** — the atomic-replace rename itself fails.
//!
//! ```
//! use vfault::{FileClass, IoFaultKind, IoFaultPlan, IoOp};
//!
//! let plan = IoFaultPlan::parse("short=journal@2, lie=journal@0").unwrap();
//! assert_eq!(plan.decide(FileClass::Journal, IoOp::Write, 2), Some(IoFaultKind::ShortWrite));
//! assert_eq!(plan.decide(FileClass::Journal, IoOp::Fsync, 0), Some(IoFaultKind::FsyncLie));
//! assert_eq!(plan.decide(FileClass::Journal, IoOp::Write, 3), None);
//! ```

use crate::PlanParseError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which durable file a storage fault targets.
///
/// Faults are scoped by *role*, not by path: every journal (and its
/// compaction temp) is `Journal`, every atomic status/report snapshot is
/// `Status`, and encoded artifacts are `Output`. Paths vary per run and
/// per worker; roles are stable, which is what makes a schedule
/// replayable from its spec alone.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FileClass {
    /// The write-ahead journal and its lease ledger (one shared file).
    Journal,
    /// Atomic whole-document snapshots: `--status-out`, chaos reports.
    Status,
    /// Encoded output artifacts.
    Output,
}

impl FileClass {
    /// Display name ("journal", "status", "output").
    pub fn name(&self) -> &'static str {
        match self {
            FileClass::Journal => "journal",
            FileClass::Status => "status",
            FileClass::Output => "output",
        }
    }

    /// Parses a display name back into a class.
    pub fn parse(s: &str) -> Option<FileClass> {
        match s {
            "journal" => Some(FileClass::Journal),
            "status" => Some(FileClass::Status),
            "output" => Some(FileClass::Output),
            _ => None,
        }
    }

    fn id(&self) -> u64 {
        match self {
            FileClass::Journal => 0,
            FileClass::Status => 1,
            FileClass::Output => 2,
        }
    }
}

impl std::fmt::Display for FileClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The durable-IO operation a fault keys on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IoOp {
    /// An append of one record's bytes.
    Write,
    /// A sync of appended bytes to stable storage.
    Fsync,
    /// An atomic-replace rename (temp file over the real document).
    Rename,
}

impl IoOp {
    /// Display name ("write", "fsync", "rename").
    pub fn name(&self) -> &'static str {
        match self {
            IoOp::Write => "write",
            IoOp::Fsync => "fsync",
            IoOp::Rename => "rename",
        }
    }

    fn id(&self) -> u64 {
        match self {
            IoOp::Write => 0,
            IoOp::Fsync => 1,
            IoOp::Rename => 2,
        }
    }
}

impl std::fmt::Display for IoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The kinds of storage fault a plan can inject. Each kind fires on
/// exactly one [`IoOp`] (see [`IoFaultKind::op`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IoFaultKind {
    /// The write persists only a prefix of the record, then errors — the
    /// torn-record case the journal's CRC + quarantine must absorb.
    ShortWrite,
    /// The write fails with EIO and nothing reaches the file — the
    /// transient class an append retry may recover from.
    WriteEio,
    /// The write lands a prefix, then the volume is full (`ENOSPC`) — a
    /// permanent error no retry can save.
    Enospc,
    /// The fsync fails with EIO; nothing new became durable. The caller
    /// must treat every byte since the last successful sync as lost.
    FsyncEio,
    /// The fsync *lies*: it reports Ok but made nothing durable. Bytes
    /// past the last honest sync are dropped at simulated power-cut.
    FsyncLie,
    /// The atomic-replace rename fails; the target document is untouched.
    RenameFail,
}

impl IoFaultKind {
    /// The operation this fault fires on.
    pub fn op(&self) -> IoOp {
        match self {
            IoFaultKind::ShortWrite | IoFaultKind::WriteEio | IoFaultKind::Enospc => IoOp::Write,
            IoFaultKind::FsyncEio | IoFaultKind::FsyncLie => IoOp::Fsync,
            IoFaultKind::RenameFail => IoOp::Rename,
        }
    }

    /// Display name, doubling as the spec-grammar key ("short", "eio",
    /// "enospc", "fsync-eio", "lie", "rename-fail").
    pub fn name(&self) -> &'static str {
        match self {
            IoFaultKind::ShortWrite => "short",
            IoFaultKind::WriteEio => "eio",
            IoFaultKind::Enospc => "enospc",
            IoFaultKind::FsyncEio => "fsync-eio",
            IoFaultKind::FsyncLie => "lie",
            IoFaultKind::RenameFail => "rename-fail",
        }
    }

    /// Parses a display name back into a kind.
    pub fn parse(s: &str) -> Option<IoFaultKind> {
        match s {
            "short" => Some(IoFaultKind::ShortWrite),
            "eio" => Some(IoFaultKind::WriteEio),
            "enospc" => Some(IoFaultKind::Enospc),
            "fsync-eio" => Some(IoFaultKind::FsyncEio),
            "lie" => Some(IoFaultKind::FsyncLie),
            "rename-fail" => Some(IoFaultKind::RenameFail),
            _ => None,
        }
    }
}

impl std::fmt::Display for IoFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One scripted storage fault: `kind` fires on op number `index` of its
/// op stream on files of `class`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct IoFault {
    kind: IoFaultKind,
    class: FileClass,
    index: u64,
}

/// A deterministic storage-fault plan.
///
/// Combines explicitly scripted faults with an optional seeded random
/// layer. Decisions are a pure function of the plan and the
/// `(class, op, index)` key — see the [module docs](self) for the fault
/// taxonomy and [`IoFaultPlan::parse`] for the spec grammar.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct IoFaultPlan {
    faults: Vec<IoFault>,
    seed: u64,
    rate: Option<f64>,
}

impl IoFaultPlan {
    /// An empty plan: every decision is a no-op.
    pub fn new() -> IoFaultPlan {
        IoFaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.rate.is_none()
    }

    /// Scripts one fault: `kind` fires on op `index` of `class`.
    pub fn with_fault(mut self, kind: IoFaultKind, class: FileClass, index: u64) -> IoFaultPlan {
        self.faults.push(IoFault { kind, class, index });
        self
    }

    /// Adds a seeded random layer: each `(class, op, index)` key is
    /// independently faulted with probability `rate`, drawing uniformly
    /// among the kinds valid for that op.
    pub fn with_random(mut self, seed: u64, rate: f64) -> IoFaultPlan {
        self.seed = seed;
        self.rate = Some(rate);
        self
    }

    /// The fault to inject on op number `index` of the `(class, op)`
    /// stream, if any. Pure: depends only on the plan and the key, so a
    /// schedule replays bit-exactly. Scripted faults outrank the random
    /// layer.
    pub fn decide(&self, class: FileClass, op: IoOp, index: u64) -> Option<IoFaultKind> {
        if let Some(f) =
            self.faults.iter().find(|f| f.class == class && f.index == index && f.kind.op() == op)
        {
            return Some(f.kind);
        }
        let rate = self.rate?;
        // Mix the full key into the seed (SplitMix64's constant) so each
        // op gets an independent, order-free stream.
        let key = class.id() ^ op.id().rotate_left(8) ^ index.rotate_left(16);
        let mixed = self.seed ^ key.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
        let mut rng = SmallRng::seed_from_u64(mixed);
        let roll: f64 = rng.gen_range(0.0..1.0);
        if roll >= rate {
            return None;
        }
        Some(match op {
            IoOp::Write => match rng.gen_range(0..3u32) {
                0 => IoFaultKind::ShortWrite,
                1 => IoFaultKind::WriteEio,
                _ => IoFaultKind::Enospc,
            },
            IoOp::Fsync => match rng.gen_range(0..2u32) {
                0 => IoFaultKind::FsyncEio,
                _ => IoFaultKind::FsyncLie,
            },
            IoOp::Rename => IoFaultKind::RenameFail,
        })
    }

    /// Parses a plan from its CLI spec: comma-separated terms, the
    /// storage-level sibling of [`FaultPlan::parse`](crate::FaultPlan::parse).
    ///
    /// | term | meaning |
    /// |---|---|
    /// | `short=CLASS@N` | write op N on CLASS persists a torn prefix |
    /// | `eio=CLASS@N` | write op N on CLASS fails with EIO (nothing written) |
    /// | `enospc=CLASS@N` | write op N on CLASS hits disk-full mid-record |
    /// | `fsync-eio=CLASS@N` | fsync op N on CLASS fails (nothing became durable) |
    /// | `lie=CLASS@N` | fsync op N on CLASS reports Ok but syncs nothing |
    /// | `rename-fail=CLASS@N` | rename op N on CLASS fails |
    /// | `seed=N` | seed for the random layer |
    /// | `rate=F` | enable the random layer: fault each op with probability F |
    ///
    /// `CLASS` is `journal`, `status`, or `output`.
    pub fn parse(spec: &str) -> Result<IoFaultPlan, PlanParseError> {
        let mut plan = IoFaultPlan::new();
        let mut seed = 0u64;
        let mut rate: Option<f64> = None;
        for term in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, value) =
                term.split_once('=').ok_or_else(|| PlanParseError { term: term.to_string() })?;
            let bad = || PlanParseError { term: term.to_string() };
            match key {
                "seed" => seed = value.parse().map_err(|_| bad())?,
                "rate" => rate = Some(value.parse().map_err(|_| bad())?),
                _ => {
                    let kind = IoFaultKind::parse(key).ok_or_else(bad)?;
                    let (class, index) = value.split_once('@').ok_or_else(bad)?;
                    plan = plan.with_fault(
                        kind,
                        FileClass::parse(class).ok_or_else(bad)?,
                        index.parse().map_err(|_| bad())?,
                    );
                }
            }
        }
        if let Some(rate) = rate {
            plan = plan.with_random(seed, rate);
        }
        Ok(plan)
    }

    /// Serializes the plan back into the spec grammar [`parse`]
    /// understands — the form chaos reports embed so any trial
    /// reproduces from its report line alone.
    ///
    /// [`parse`]: IoFaultPlan::parse
    pub fn to_spec(&self) -> String {
        let mut terms: Vec<String> =
            self.faults.iter().map(|f| format!("{}={}@{}", f.kind, f.class, f.index)).collect();
        if let Some(rate) = self.rate {
            terms.push(format!("seed={}", self.seed));
            terms.push(format!("rate={rate}"));
        }
        terms.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_a_no_op() {
        let plan = IoFaultPlan::new();
        assert!(plan.is_empty());
        for class in [FileClass::Journal, FileClass::Status, FileClass::Output] {
            for op in [IoOp::Write, IoOp::Fsync, IoOp::Rename] {
                for index in 0..4 {
                    assert_eq!(plan.decide(class, op, index), None);
                }
            }
        }
    }

    #[test]
    fn scripted_faults_key_on_class_and_index() {
        let plan = IoFaultPlan::new()
            .with_fault(IoFaultKind::ShortWrite, FileClass::Journal, 2)
            .with_fault(IoFaultKind::RenameFail, FileClass::Status, 0);
        assert_eq!(plan.decide(FileClass::Journal, IoOp::Write, 2), Some(IoFaultKind::ShortWrite));
        assert_eq!(plan.decide(FileClass::Journal, IoOp::Write, 1), None, "wrong index");
        assert_eq!(plan.decide(FileClass::Status, IoOp::Write, 2), None, "wrong class");
        assert_eq!(plan.decide(FileClass::Journal, IoOp::Fsync, 2), None, "wrong op");
        assert_eq!(plan.decide(FileClass::Status, IoOp::Rename, 0), Some(IoFaultKind::RenameFail));
    }

    #[test]
    fn fault_kinds_bind_to_their_ops() {
        for (kind, op) in [
            (IoFaultKind::ShortWrite, IoOp::Write),
            (IoFaultKind::WriteEio, IoOp::Write),
            (IoFaultKind::Enospc, IoOp::Write),
            (IoFaultKind::FsyncEio, IoOp::Fsync),
            (IoFaultKind::FsyncLie, IoOp::Fsync),
            (IoFaultKind::RenameFail, IoOp::Rename),
        ] {
            assert_eq!(kind.op(), op);
        }
    }

    #[test]
    fn random_layer_is_deterministic_and_order_free() {
        let plan = IoFaultPlan::new().with_random(42, 0.5);
        let forward: Vec<_> =
            (0..64).map(|i| plan.decide(FileClass::Journal, IoOp::Write, i)).collect();
        let backward: Vec<_> =
            (0..64).rev().map(|i| plan.decide(FileClass::Journal, IoOp::Write, i)).collect();
        let reversed: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed, "decisions must not depend on query order");
        let faulted = forward.iter().filter(|d| d.is_some()).count();
        assert!((16..=48).contains(&faulted), "faulted {faulted}/64 at rate 0.5");
        // Random faults respect the op they fire on.
        for i in 0..64 {
            if let Some(kind) = plan.decide(FileClass::Status, IoOp::Fsync, i) {
                assert_eq!(kind.op(), IoOp::Fsync);
            }
        }
    }

    #[test]
    fn random_layers_differ_across_seeds() {
        let a: Vec<_> = (0..64)
            .map(|i| {
                IoFaultPlan::new().with_random(1, 0.5).decide(FileClass::Journal, IoOp::Write, i)
            })
            .collect();
        let b: Vec<_> = (0..64)
            .map(|i| {
                IoFaultPlan::new().with_random(2, 0.5).decide(FileClass::Journal, IoOp::Write, i)
            })
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn scripted_faults_outrank_the_random_layer() {
        let plan = IoFaultPlan::new()
            .with_fault(IoFaultKind::Enospc, FileClass::Journal, 0)
            .with_random(7, 1.0);
        assert_eq!(plan.decide(FileClass::Journal, IoOp::Write, 0), Some(IoFaultKind::Enospc));
    }

    #[test]
    fn spec_round_trips() {
        let spec = "short=journal@2,eio=journal@5,enospc=status@1,fsync-eio=journal@0,\
                    lie=journal@3,rename-fail=status@0";
        let plan = IoFaultPlan::parse(spec).expect("valid spec");
        assert_eq!(IoFaultPlan::parse(&plan.to_spec()).expect("round trip"), plan);
        let random = IoFaultPlan::parse("seed=9,rate=0.25").expect("valid spec");
        assert!(!random.is_empty());
        assert_eq!(IoFaultPlan::parse(&random.to_spec()).expect("round trip"), random);
        assert_eq!(IoFaultPlan::parse("").expect("empty").to_spec(), "");
    }

    #[test]
    fn parse_rejects_malformed_terms() {
        for bad in [
            "short=journal",
            "short=tape@1",
            "short=journal@x",
            "bogus=journal@1",
            "rate=lots",
            "short",
        ] {
            assert!(IoFaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn names_round_trip() {
        for kind in [
            IoFaultKind::ShortWrite,
            IoFaultKind::WriteEio,
            IoFaultKind::Enospc,
            IoFaultKind::FsyncEio,
            IoFaultKind::FsyncLie,
            IoFaultKind::RenameFail,
        ] {
            assert_eq!(IoFaultKind::parse(kind.name()), Some(kind));
        }
        for class in [FileClass::Journal, FileClass::Status, FileClass::Output] {
            assert_eq!(FileClass::parse(class.name()), Some(class));
        }
        assert_eq!(IoFaultKind::parse("torn"), None);
        assert_eq!(FileClass::parse("tape"), None);
    }
}
