//! Scenario scoring end to end: real encodes through the Table 1 rules.

use vbench::measure::Measurement;
use vbench::reference::{reference_config, reference_encode, target_bps};
use vbench::scenario::{score, score_with_video, Scenario};
use vbench::suite::{Suite, SuiteOptions};
use vcodec::{encode, CodecFamily, EncoderConfig, Preset};
use vhw::{HwEncoder, HwVendor};

fn tiny_suite() -> Suite {
    Suite::vbench(&SuiteOptions::tiny())
}

#[test]
fn reference_scores_itself_at_unity() {
    let video = tiny_suite().by_name("bike").unwrap().generate();
    let (reference, _) = reference_encode(Scenario::Vod, &video);
    // Identical measurement: every ratio is exactly 1, every constraint
    // except Live's absolute-speed test is satisfiable.
    let s = score(Scenario::Platform, &reference, &reference, 0.0);
    assert!(s.valid);
    assert!((s.score.unwrap() - 1.0).abs() < 1e-12);
    let s = score(Scenario::Vod, &reference, &reference, 0.0);
    assert!(s.valid);
    assert!((s.score.unwrap() - 1.0).abs() < 1e-12);
}

#[test]
fn hevc_class_wins_vod_on_bitrate() {
    // The VOD scenario trades speed for compression; the HEVC-class
    // encoder must post B > 1 against the AVC-class reference (it may or
    // may not pass the quality gate on every clip — B is the structural
    // claim).
    let video = tiny_suite().by_name("game2").unwrap().generate();
    let (reference, _) = reference_encode(Scenario::Vod, &video);
    let cfg = EncoderConfig::new(
        CodecFamily::Hevc,
        Preset::Medium,
        reference_config(Scenario::Vod, &video).rate,
    );
    let out = encode(&video, &cfg);
    let m = Measurement::from_encode(&video, &out);
    let s = score_with_video(Scenario::Vod, &video, &m, &reference);
    assert!(
        s.ratios.b > 0.95,
        "hevc-class should at least match avc-class bitrate: B = {}",
        s.ratios.b
    );
}

#[test]
fn hardware_meets_live_realtime_by_construction() {
    let video = tiny_suite().by_name("girl").unwrap().generate();
    let (reference, _) = reference_encode(Scenario::Live, &video);
    for vendor in HwVendor::ALL {
        let hw = HwEncoder::new(vendor);
        let out = hw.encode_bitrate(&video, target_bps(&video));
        let m = Measurement::from_encode_with_speed(&video, &out.output, out.speed_pixels_per_sec);
        let s = score_with_video(Scenario::Live, &video, &m, &reference);
        assert!(s.valid, "{vendor} must sustain real time");
        assert!(s.score.is_some());
    }
}

#[test]
fn hardware_cannot_produce_valid_popular_transcodes() {
    // Section 6.2: "it was impossible for either of the GPUs to produce a
    // single valid transcode for this scenario" — the restricted tool set
    // cannot beat the highest-effort software reference on both B and Q.
    let suite = tiny_suite();
    for name in ["desktop", "cricket", "hall"] {
        let video = suite.by_name(name).unwrap().generate();
        let (reference, _) = reference_encode(Scenario::Popular, &video);
        for vendor in HwVendor::ALL {
            let hw = HwEncoder::new(vendor);
            let out = hw.encode_bitrate(&video, target_bps(&video));
            let m =
                Measurement::from_encode_with_speed(&video, &out.output, out.speed_pixels_per_sec);
            let s = score_with_video(Scenario::Popular, &video, &m, &reference);
            assert!(
                !s.valid,
                "{vendor} on '{name}' should fail Popular (B={:.2}, Q={:.2})",
                s.ratios.b, s.ratios.q
            );
        }
    }
}

#[test]
fn upload_reference_is_nearly_lossless() {
    let video = tiny_suite().by_name("funny").unwrap().generate();
    let (reference, _) = reference_encode(Scenario::Upload, &video);
    assert!(
        reference.quality_db > 38.0,
        "upload (CRF 18) should be near-lossless: {} dB",
        reference.quality_db
    );
}

#[test]
fn upload_tolerates_large_but_not_absurd_streams() {
    let video = tiny_suite().by_name("funny").unwrap().generate();
    let (reference, _) = reference_encode(Scenario::Upload, &video);
    // 4x the reference bitrate: allowed (B = 0.25 > 0.2).
    let ok = Measurement::new(
        reference.speed_pps * 2.0,
        reference.bitrate_bpps * 4.0,
        reference.quality_db,
    );
    assert!(score(Scenario::Upload, &ok, &reference, 0.0).valid);
    // 10x: rejected.
    let bad = Measurement::new(
        reference.speed_pps * 2.0,
        reference.bitrate_bpps * 10.0,
        reference.quality_db,
    );
    assert!(!score(Scenario::Upload, &bad, &reference, 0.0).valid);
}

#[test]
fn faster_preset_scores_platform_when_output_is_identical() {
    // The Platform scenario models same-encoder/new-platform runs: we
    // emulate it by replaying the same encode and claiming a faster clock.
    let video = tiny_suite().by_name("presentation").unwrap().generate();
    let (reference, _) = reference_encode(Scenario::Platform, &video);
    let faster =
        Measurement::new(reference.speed_pps * 1.37, reference.bitrate_bpps, reference.quality_db);
    let s = score(Scenario::Platform, &faster, &reference, 0.0);
    assert!(s.valid);
    assert!((s.score.unwrap() - 1.37).abs() < 1e-9);
}

#[test]
fn scores_report_per_video_not_aggregated() {
    // Section 4.3: per-video reporting. Two videos yield distinct scores
    // under the same candidate configuration.
    let suite = tiny_suite();
    let mut scores = Vec::new();
    for name in ["desktop", "hall"] {
        let video = suite.by_name(name).unwrap().generate();
        let (reference, _) = reference_encode(Scenario::Vod, &video);
        let hw = HwEncoder::new(HwVendor::Qsv);
        let out = hw.encode_bitrate(&video, target_bps(&video));
        let m = Measurement::from_encode_with_speed(&video, &out.output, out.speed_pixels_per_sec);
        let s = score_with_video(Scenario::Vod, &video, &m, &reference);
        scores.push(s.ratios.s);
    }
    assert_ne!(scores[0], scores[1], "distinct videos must yield distinct measurements");
}
