//! The farm's contract after the engine refactor: fanning a batch out
//! over any number of workers changes wall-clock time only. Results come
//! back in job order, and every deterministic field — bitstream bytes,
//! bitrate, quality, chosen operating point — is bit-identical between a
//! serial run and a maximally parallel one, with software and hardware
//! jobs mixed in one batch.

use vbench::engine::{Engine, RateMode, TranscodeRequest};
use vbench::farm::{transcode_batch, transcode_batch_with, EngineJob, TranscodeJob};
use vcodec::{CodecFamily, EncoderConfig, Preset, RateControl};
use vframe::color::{frame_from_fn, Yuv};
use vframe::{Resolution, Video};
use vhw::HwVendor;

fn source(seed: u32, frames: usize) -> Video {
    let res = Resolution::new(80, 48);
    let fs = (0..frames)
        .map(|t| {
            frame_from_fn(res, |x, y| {
                Yuv::new(((x * (2 + seed) + y * 3 + 5 * t as u32) % 256) as u8, 128, 128)
            })
        })
        .collect();
    Video::new(fs, 30.0)
}

/// A mixed batch covering both backends and the interesting rate modes.
fn mixed_jobs() -> Vec<EngineJob> {
    let mut jobs = Vec::new();
    for (i, family) in
        [CodecFamily::Avc, CodecFamily::Hevc, CodecFamily::Vp9].into_iter().enumerate()
    {
        jobs.push(EngineJob::new(
            format!("sw{i}"),
            source(i as u32, 5),
            TranscodeRequest::software(family, Preset::Fast, RateMode::ConstQuality { crf: 30.0 }),
        ));
    }
    for (i, vendor) in HwVendor::ALL.into_iter().enumerate() {
        jobs.push(EngineJob::new(
            format!("hw{i}"),
            source(10 + i as u32, 5),
            TranscodeRequest::hardware(vendor, RateMode::Bitrate { bps: 400_000 }),
        ));
    }
    // One quality-target job per backend: the bisection must settle on
    // the same operating point regardless of scheduling.
    jobs.push(EngineJob::new(
        "sw-target",
        source(20, 4),
        TranscodeRequest::software(CodecFamily::Avc, Preset::Fast, {
            RateMode::QualityTarget {
                target_db: 33.0,
                lo_bps: 50_000,
                hi_bps: 4_000_000,
                fallback_bps: Some(500_000),
            }
        }),
    ));
    jobs.push(EngineJob::new(
        "hw-target",
        source(21, 4),
        TranscodeRequest::hardware(
            HwVendor::Nvenc,
            RateMode::QualityTarget {
                target_db: 33.0,
                lo_bps: 50_000,
                hi_bps: 4_000_000,
                fallback_bps: Some(500_000),
            },
        ),
    ));
    jobs
}

#[test]
fn one_worker_and_many_workers_agree_bit_for_bit() {
    let jobs = mixed_jobs();
    let serial = transcode_batch_with(&Engine, &jobs, 1).expect("serial batch");
    let parallel = transcode_batch_with(&Engine, &jobs, 8).expect("parallel batch");
    assert_eq!(serial.results.len(), jobs.len());
    assert_eq!(parallel.results.len(), jobs.len());
    for ((job, s), p) in jobs.iter().zip(&serial.results).zip(&parallel.results) {
        // Stable ordering: results line up with the input jobs.
        assert_eq!(s.name, job.name);
        assert_eq!(p.name, job.name);
        // Identical outputs, independent of scheduling.
        let so = s.success().expect("serial job succeeds");
        let po = p.success().expect("parallel job succeeds");
        assert_eq!(so.bytes(), po.bytes(), "{}", job.name);
        assert_eq!(so.chosen_bps(), po.chosen_bps(), "{}", job.name);
        assert_eq!(so.measurement().bitrate_bpps, po.measurement().bitrate_bpps, "{}", job.name);
        assert_eq!(so.measurement().quality_db, po.measurement().quality_db, "{}", job.name);
    }
}

#[test]
fn engine_farm_matches_legacy_software_farm() {
    // The raw-software driver and the engine driver share one scheduler;
    // for pure software jobs they must produce identical bitstreams.
    let configs: Vec<(String, Video, EncoderConfig)> = (0..4)
        .map(|i| {
            (
                format!("j{i}"),
                source(i, 5),
                EncoderConfig::new(
                    CodecFamily::Avc,
                    Preset::Fast,
                    RateControl::ConstQuality { crf: 30.0 },
                ),
            )
        })
        .collect();
    let legacy_jobs: Vec<TranscodeJob> = configs
        .iter()
        .map(|(name, video, config)| TranscodeJob {
            name: name.clone(),
            video: video.clone(),
            config: *config,
        })
        .collect();
    let engine_jobs: Vec<EngineJob> = configs
        .iter()
        .map(|(name, video, config)| {
            EngineJob::new(name.clone(), video.clone(), TranscodeRequest::from_config(config))
        })
        .collect();
    let legacy = transcode_batch(&legacy_jobs, 4).expect("legacy batch");
    let engine = transcode_batch_with(&Engine, &engine_jobs, 4).expect("engine batch");
    for (l, e) in legacy.results.iter().zip(&engine.results) {
        assert_eq!(l.name, e.name);
        let eo = e.success().expect("engine job succeeds");
        assert_eq!(l.output.bytes.as_slice(), eo.bytes(), "{}", l.name);
    }
}

#[test]
fn worker_count_does_not_change_table_values() {
    // The acceptance shape for Tables 3/4/5: per-job deterministic fields
    // survive any fan-out width, including more workers than jobs.
    let jobs = mixed_jobs();
    let a = transcode_batch_with(&Engine, &jobs, 3).expect("batch");
    let b = transcode_batch_with(&Engine, &jobs, 32).expect("batch");
    for (x, y) in a.results.iter().zip(&b.results) {
        let xo = x.success().expect("job succeeds");
        let yo = y.success().expect("job succeeds");
        assert_eq!(xo.bytes(), yo.bytes(), "{}", x.name);
    }
}
