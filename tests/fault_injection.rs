//! Fault-injection integration tests: the resilient farm under
//! deterministic fault plans.
//!
//! The invariant under test everywhere: fault decisions key on
//! `(job index, attempt)`, never on wall clock or scheduling, so a
//! seeded plan replays bit-exactly at any worker count — and every job a
//! plan does *not* touch produces bytes identical to an uninjected run.

use vbench::engine::{Engine, RateMode, TranscodeRequest};
use vbench::farm::{transcode_batch_resilient, EngineBatchReport, EngineJob, JobError};
use vbench::resilience::{HedgePolicy, ResilienceConfig};
use vbench::suite::{Suite, SuiteOptions};
use vcodec::{CodecFamily, Preset};
use vfault::{FaultKind, FaultPlan, RandomFaults};

/// A small mixed batch from the suite: enough jobs to exercise the
/// scheduler, small enough to run in debug mode.
fn jobs() -> Vec<EngineJob> {
    let suite = Suite::vbench(&SuiteOptions::tiny());
    suite
        .iter()
        .take(6)
        .map(|v| {
            EngineJob::new(
                v.name,
                v.generate(),
                TranscodeRequest::software(
                    CodecFamily::Avc,
                    Preset::Fast,
                    RateMode::ConstQuality { crf: 30.0 },
                ),
            )
        })
        .collect()
}

/// One scheduling-invariant fact row per job: name, success, attempts,
/// degradation notches, output bytes.
type Fingerprint = Vec<(String, bool, u32, u32, Option<Vec<u8>>)>;

/// The per-job facts that must be scheduling-invariant: status, bytes,
/// attempt count, degradation. (Wall-clock times and hedge flags are
/// legitimately run-dependent.)
fn fingerprint(report: &EngineBatchReport) -> Fingerprint {
    report
        .results
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                r.outcome.is_ok(),
                r.attempts,
                r.degraded,
                r.outcome.as_ref().ok().map(|o| o.bytes().to_vec()),
            )
        })
        .collect()
}

#[test]
fn acceptance_one_panic_one_transient() {
    // The PR's acceptance scenario: one injected panic (all attempts) and
    // one transient fault in a batch. The batch completes; the panicked
    // job is reported failed; the transient job succeeds on retry; every
    // other job's bytes are identical to an uninjected run.
    let jobs = jobs();
    let clean = transcode_batch_resilient(&Engine, &jobs, 2, &ResilienceConfig::default())
        .expect("clean batch");
    let plan = FaultPlan::new().with_panic(1, u32::MAX).with_transient(3, 1);
    let policy = ResilienceConfig::default().with_max_retries(2).with_fault_plan(plan);
    let report = transcode_batch_resilient(&Engine, &jobs, 2, &policy).expect("faulted batch");

    assert!(
        matches!(report.results[1].outcome, Err(JobError::Panicked { .. })),
        "job 1 panics on every attempt and must be reported failed"
    );
    assert!(report.results[3].outcome.is_ok(), "transient job recovers on retry");
    assert_eq!(report.results[3].attempts, 2, "one faulted attempt, one retry");
    assert_eq!(report.summary.failed, 1);
    assert_eq!(report.summary.panics, 1);
    assert!(report.summary.retries >= 1);
    for i in [0usize, 2, 4, 5] {
        let clean_bytes = clean.results[i].success().expect("clean job").bytes();
        let faulted_bytes = report.results[i].success().expect("untouched job").bytes();
        assert_eq!(clean_bytes, faulted_bytes, "job {i} must be byte-identical");
    }

    // Same plan, any worker count: identical report.
    for workers in [1usize, 4, 8] {
        let again =
            transcode_batch_resilient(&Engine, &jobs, workers, &policy).expect("replayed batch");
        assert_eq!(fingerprint(&report), fingerprint(&again), "workers={workers}");
    }
}

#[test]
fn seeded_random_plans_replay_across_worker_counts() {
    let jobs = jobs();
    let plan = FaultPlan::new().with_random(42, RandomFaults { rate: 0.5, straggle_secs: 0.02 });
    let policy = ResilienceConfig::default().with_max_retries(3).with_fault_plan(plan);
    let serial = transcode_batch_resilient(&Engine, &jobs, 1, &policy).expect("serial");
    for workers in [2usize, 5] {
        let parallel =
            transcode_batch_resilient(&Engine, &jobs, workers, &policy).expect("parallel");
        assert_eq!(fingerprint(&serial), fingerprint(&parallel), "workers={workers}");
    }
    // Different seed, different plan (with a 50% rate, 6 jobs × 4
    // attempts makes a collision across every job astronomically
    // unlikely... but assert only that decisions differ somewhere).
    let other = FaultPlan::new().with_random(43, RandomFaults { rate: 0.5, straggle_secs: 0.02 });
    let decisions = |p: &FaultPlan| -> Vec<_> {
        (0..6)
            .flat_map(|j| (0..4).map(move |a| (j, a)))
            .map(|(j, a)| {
                let d = p.decide(j, a);
                (d.fail.map(|k| k.name()), d.extra_secs.to_bits())
            })
            .collect()
    };
    assert_ne!(
        decisions(&policy.fault_plan),
        decisions(&other),
        "different seeds must give different plans"
    );
}

#[test]
fn transient_faults_recover_within_retry_budget_and_fail_beyond_it() {
    let jobs = jobs();
    // Two faulted attempts need two retries.
    let plan = || FaultPlan::new().with_transient(0, 2);
    let enough = ResilienceConfig::default().with_max_retries(2).with_fault_plan(plan());
    let report = transcode_batch_resilient(&Engine, &jobs, 2, &enough).expect("batch");
    assert!(report.results[0].outcome.is_ok());
    assert_eq!(report.results[0].attempts, 3);

    let starved = ResilienceConfig::default().with_max_retries(1).with_fault_plan(plan());
    let report = transcode_batch_resilient(&Engine, &jobs, 2, &starved).expect("batch");
    assert!(
        matches!(
            report.results[0].outcome,
            Err(JobError::Transcode(vbench::engine::TranscodeError::Injected(f)))
                if f.kind == FaultKind::Transient
        ),
        "budget exhausted: the last injected error surfaces"
    );
    // Permanent faults never retry, whatever the budget.
    let permanent = ResilienceConfig::default()
        .with_max_retries(5)
        .with_fault_plan(FaultPlan::new().with_permanent(2));
    let report = transcode_batch_resilient(&Engine, &jobs, 2, &permanent).expect("batch");
    assert_eq!(report.results[2].attempts, 1, "permanent faults fail fast");
    assert!(report.results[2].outcome.is_err());
}

#[test]
fn hedged_results_are_byte_identical_to_unhedged() {
    let jobs = jobs();
    let plan = FaultPlan::new().with_straggler(1, 5.0);
    let unhedged = ResilienceConfig::default().with_fault_plan(plan.clone());
    let baseline = transcode_batch_resilient(&Engine, &jobs, 3, &unhedged).expect("unhedged");
    // An aggressive hedge policy so the straggler (which sleeps a real
    // bounded interval) reliably trips it.
    let hedged_policy =
        unhedged.clone().with_hedge(HedgePolicy { quantile: 0.5, factor: 1.2, min_samples: 2 });
    let hedged = transcode_batch_resilient(&Engine, &jobs, 3, &hedged_policy).expect("hedged");
    assert_eq!(
        fingerprint(&baseline),
        fingerprint(&hedged),
        "hedging may only change wall time, never results"
    );
    // The straggler job still carries its injected virtual latency.
    let slow = hedged.results[1].success().expect("straggler completes");
    assert!(slow.timings().total() > 5.0, "virtual latency charged: {}", slow.timings().total());
}

#[test]
fn deadline_misses_degrade_presets_when_asked() {
    let suite = Suite::vbench(&SuiteOptions::tiny());
    let v = suite.iter().next().expect("suite video");
    let jobs = vec![EngineJob::new(
        v.name,
        v.generate(),
        TranscodeRequest::software(
            CodecFamily::Avc,
            Preset::VerySlow,
            RateMode::ConstQuality { crf: 30.0 },
        ),
    )];
    // A straggler makes the first attempt blow any deadline; the retry is
    // fault-free and fast enough.
    let plan = FaultPlan::new().with_transient_straggler(0, 1, 100.0);
    let policy = ResilienceConfig::default()
        .with_max_retries(1)
        .with_job_deadline(50.0)
        .with_degradation()
        .with_fault_plan(plan);
    let report = transcode_batch_resilient(&Engine, &jobs, 1, &policy).expect("batch");
    let r = &report.results[0];
    assert!(r.deadline_missed, "attempt 0 exceeded the deadline");
    assert_eq!(r.degraded, 1, "retry downshifted one notch");
    assert!(r.outcome.is_ok(), "degraded retry completed");
    assert_eq!(report.summary.deadline_misses, 1);
    assert_eq!(report.summary.degraded, 1);

    // Without degradation enabled the preset is untouched on retry.
    let plain = ResilienceConfig::default()
        .with_max_retries(1)
        .with_job_deadline(50.0)
        .with_fault_plan(FaultPlan::new().with_transient_straggler(0, 1, 100.0));
    let report = transcode_batch_resilient(&Engine, &jobs, 1, &plain).expect("batch");
    assert_eq!(report.results[0].degraded, 0);
    assert!(report.results[0].outcome.is_ok());
}

#[test]
fn live_deadline_derives_from_realtime_pixel_rate() {
    let suite = Suite::vbench(&SuiteOptions::tiny());
    let v = suite.iter().next().expect("suite video");
    let video = v.generate();
    let deadline = vbench::scenario::live_deadline_secs(&video);
    let expected = video.frames().len() as f64 / video.fps();
    assert!((deadline - expected).abs() < 1e-9, "live deadline is the clip duration");
    // Wired through a job: an injected straggler far beyond the clip
    // duration must miss the Live deadline.
    let job = EngineJob::new(
        v.name,
        video,
        TranscodeRequest::software(
            CodecFamily::Avc,
            Preset::Fast,
            RateMode::ConstQuality { crf: 30.0 },
        ),
    )
    .with_deadline(deadline);
    let policy = ResilienceConfig::default()
        .with_fault_plan(FaultPlan::new().with_straggler(0, deadline + 100.0));
    let report = transcode_batch_resilient(&Engine, &[job], 1, &policy).expect("batch");
    assert!(
        matches!(report.results[0].outcome, Err(JobError::DeadlineExceeded { .. })),
        "straggling past the clip duration misses the live deadline"
    );
}

#[test]
fn panic_isolation_never_kills_neighbour_jobs() {
    let jobs = jobs();
    // Panic on half the batch, every attempt: the rest must complete.
    let plan =
        FaultPlan::new().with_panic(0, u32::MAX).with_panic(2, u32::MAX).with_panic(4, u32::MAX);
    let policy = ResilienceConfig::default().with_fault_plan(plan);
    let report = transcode_batch_resilient(&Engine, &jobs, 3, &policy).expect("batch survives");
    assert_eq!(report.summary.failed, 3);
    assert_eq!(report.summary.completed, 3);
    for i in [1usize, 3, 5] {
        assert!(report.results[i].outcome.is_ok(), "job {i} unaffected by neighbour panics");
    }
    for i in [0usize, 2, 4] {
        assert!(matches!(report.results[i].outcome, Err(JobError::Panicked { .. })));
    }
}
