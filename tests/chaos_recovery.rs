//! Chaos-auditor integration tests: the `vbench chaos` CLI surface.
//!
//! The invariants under test: on healthy code the auditor is green on
//! both backends (exit 0, a schema-versioned report with zero
//! violations and one reproducing fault schedule per trial); with the
//! historical unsynced-rename bug reintroduced (`--inject-unsynced-
//! rename`) it exits 6 and the report names the violating trials; and
//! the `--io-fault-plan` flag scripts storage faults on the plain
//! batch and dispatch paths without breaking byte-identical output.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use vtrace::json::{self, Value};

const EXE: &str = env!("CARGO_BIN_EXE_vbench");
const VIDEOS: &str = "desktop,cat,girl";

/// A scratch directory in the temp dir, unique per test.
fn temp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("vbench-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("create temp dir");
    p
}

/// Runs `vbench chaos` with the standard tiny-suite flags plus `extra`,
/// writing the report to `<dir>/report.json`, and returns the process
/// output (success not asserted — the bug-injection test wants exit 6).
fn run_chaos(dir: &Path, extra: &[&str]) -> Output {
    Command::new(EXE)
        .args(["chaos", "--scale", "tiny", "--videos", VIDEOS])
        .args(["--dir", &format!("{}/work", dir.display())])
        .args(["--out", &format!("{}/report.json", dir.display())])
        .args(extra)
        .output()
        .expect("run chaos")
}

/// Parses `<dir>/report.json` and sanity-checks the schema envelope.
fn read_report(dir: &Path) -> Value {
    let text =
        std::fs::read_to_string(format!("{}/report.json", dir.display())).expect("chaos report");
    let report = json::parse(&text).expect("report parses");
    assert_eq!(
        report.get("schema").and_then(Value::as_str),
        Some("vbench.chaos.v1"),
        "report schema envelope: {text}"
    );
    report
}

/// The report's trial array.
fn trials(report: &Value) -> &[Value] {
    match report.get("trial_results") {
        Some(Value::Array(items)) => items,
        other => panic!("trial_results must be an array, got {other:?}"),
    }
}

#[test]
fn healthy_batch_audit_is_green_and_reproducible() {
    let dir = temp_dir("batch-green");
    let out = run_chaos(&dir, &["--trials", "4", "--seed", "7"]);
    assert!(
        out.status.success(),
        "chaos batch failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let report = read_report(&dir);
    assert_eq!(report.get("violations").and_then(Value::as_u64), Some(0), "green audit");
    assert_eq!(report.get("scenario").and_then(Value::as_str), Some("batch"));
    let results = trials(&report);
    assert_eq!(results.len(), 4, "one result per trial");
    // Every trial carries its reproducing schedule: the per-trial seed
    // plus the exact fault specs it ran under.
    for trial in results {
        // Seeds are full-width u64s, past f64's 2^53 integer range —
        // presence and determinism are what the report guarantees.
        assert!(trial.get("seed").and_then(Value::as_f64).is_some(), "per-trial seed");
        assert!(trial.get("crash_plan").and_then(Value::as_str).is_some(), "crash spec");
        assert!(trial.get("io_plan").and_then(Value::as_str).is_some(), "io spec");
    }
    // Determinism: the same seed reproduces the same schedules.
    let rerun_dir = temp_dir("batch-green-rerun");
    let rerun = run_chaos(&rerun_dir, &["--trials", "4", "--seed", "7"]);
    assert!(rerun.status.success(), "rerun failed: {rerun:?}");
    let rerun_report = read_report(&rerun_dir);
    let schedule = |t: &Value| {
        (
            t.get("seed").and_then(Value::as_f64).map(f64::to_bits),
            t.get("crash_plan").and_then(Value::as_str).map(str::to_owned),
            t.get("io_plan").and_then(Value::as_str).map(str::to_owned),
        )
    };
    assert_eq!(
        trials(&report).iter().map(schedule).collect::<Vec<_>>(),
        trials(&rerun_report).iter().map(schedule).collect::<Vec<_>>(),
        "seed 7 must reproduce the same fault schedules"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&rerun_dir);
}

#[test]
fn healthy_dispatch_audit_is_green() {
    let dir = temp_dir("dispatch-green");
    let out = run_chaos(&dir, &["--trials", "3", "--seed", "7", "--topology", "dispatch"]);
    assert!(
        out.status.success(),
        "chaos dispatch failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let report = read_report(&dir);
    assert_eq!(report.get("violations").and_then(Value::as_u64), Some(0), "green audit");
    assert_eq!(report.get("scenario").and_then(Value::as_str), Some("dispatch"));
    assert_eq!(trials(&report).len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reintroduced_unsynced_rename_exits_6_with_named_trials() {
    let dir = temp_dir("bug");
    let out = run_chaos(&dir, &["--trials", "2", "--seed", "11", "--inject-unsynced-rename"]);
    assert_eq!(
        out.status.code(),
        Some(6),
        "the reintroduced fsync-before-rename bug must exit 6:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    // The report is still written — that is the point: it carries the
    // reproducing schedules for the violating trials.
    let report = read_report(&dir);
    let violations = report.get("violations").and_then(Value::as_u64).expect("violation count");
    assert!(violations > 0, "bug must be caught: {report:?}");
    let named = trials(&report).iter().any(|t| match t.get("violations") {
        Some(Value::Array(msgs)) => {
            msgs.iter().any(|m| m.as_str().is_some_and(|m| m.starts_with("I5")))
        }
        _ => false,
    });
    assert!(named, "some trial must name the I5 marker violation: {report:?}");
    // Stdout names the violating trials with their schedules.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("I5"), "stdout must surface the violation:\n{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--io-fault-plan` on the journaled batch path: a transient write EIO
/// is absorbed by the capped-backoff retry and the run still succeeds
/// with a journal holding one record per job.
#[test]
fn batch_io_fault_plan_transient_eio_is_retried() {
    let dir = temp_dir("batch-eio");
    let journal = format!("{}/run.jsonl", dir.display());
    let out = Command::new(EXE)
        .args(["batch", "--scale", "tiny", "--videos", VIDEOS, "--workers", "2"])
        .args(["--journal", &journal, "--io-fault-plan", "eio=journal@2"])
        .args(["--out-dir", &format!("{}/out", dir.display())])
        .output()
        .expect("run batch");
    assert!(
        out.status.success(),
        "transient EIO must be retried, not fatal:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let text = std::fs::read_to_string(&journal).expect("journal readable");
    for job in 0..VIDEOS.split(',').count() {
        let records = text
            .lines()
            .filter_map(|l| json::parse(l).ok())
            .filter(|v| {
                v.get("kind").and_then(Value::as_str) == Some("job")
                    && v.get("job").and_then(Value::as_u64) == Some(job as u64)
            })
            .count();
        assert_eq!(records, 1, "exactly one record for job {job}:\n{text}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--io-fault-plan` without `--journal` is a usage error: the faults
/// target durable IO, which the plain batch path does not perform.
#[test]
fn batch_io_fault_plan_requires_a_journal() {
    let out = Command::new(EXE)
        .args(["batch", "--scale", "tiny", "--videos", VIDEOS])
        .args(["--io-fault-plan", "eio=journal@0"])
        .output()
        .expect("run batch");
    assert_eq!(out.status.code(), Some(2), "usage error expected: {out:?}");
}

/// Chaos refuses resilience-policy flags: trials audit the durability
/// layer under a fixed clean policy, so retry/hedge knobs would make
/// the encode accounting (invariant I2) meaningless.
#[test]
fn chaos_rejects_resilience_policy_flags() {
    let dir = temp_dir("policy-flags");
    let out = run_chaos(&dir, &["--trials", "1", "--max-retries", "3"]);
    assert_eq!(out.status.code(), Some(2), "usage error expected: {out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
