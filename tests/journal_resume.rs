//! Durability integration tests: the journaled batch driver under
//! crashes, simulated and real.
//!
//! The resume invariant under test everywhere: for any crash plan and
//! any worker count, `--resume` produces bitstreams byte-identical (and
//! CRC-equal) to an uninterrupted run's, jobs with a durable journal
//! record replay with *zero* encode work, and only the jobs whose
//! records did not survive re-encode.
//!
//! The first half exercises scripted [`vfault::CrashPoint`] faults
//! in-process; the last test SIGKILLs an actual `vbench batch` child
//! mid-run and proves the resumed process converges on the same bytes.

use std::sync::atomic::{AtomicUsize, Ordering};

use vbench::engine::{Engine, RateMode, TranscodeError, TranscodeRequest, Transcoder};
use vbench::farm::EngineJob;
use vbench::resilience::ResilienceConfig;
use vbench::suite::{Suite, SuiteOptions};
use vbench::{run_batch_journaled, JournalConfig, JournalError};
use vcodec::{CodecFamily, Preset};
use vfault::{CrashPoint, FaultPlan};

/// A small batch from the tiny suite, the same shape the fault-injection
/// tests use.
fn jobs() -> Vec<EngineJob> {
    let suite = Suite::vbench(&SuiteOptions::tiny());
    suite
        .iter()
        .take(5)
        .map(|v| {
            EngineJob::new(
                v.name,
                v.generate(),
                TranscodeRequest::software(
                    CodecFamily::Avc,
                    Preset::Fast,
                    RateMode::ConstQuality { crf: 30.0 },
                ),
            )
        })
        .collect()
}

/// Counts every encode the engine actually runs, so tests can prove a
/// replayed job cost zero encode work.
#[derive(Default)]
struct CountingEngine {
    calls: AtomicUsize,
}

impl CountingEngine {
    fn calls(&self) -> usize {
        self.calls.load(Ordering::SeqCst)
    }
}

impl Transcoder for CountingEngine {
    fn transcode(
        &self,
        src: &vframe::Video,
        req: &TranscodeRequest,
    ) -> Result<vbench::TranscodeOutcome, TranscodeError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        Engine.transcode(src, req)
    }
}

/// A journal path in the target temp dir, unique per test.
fn temp_journal(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("vbench-journal-{}-{tag}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn crash_resume_is_byte_identical_at_any_worker_count() {
    let jobs = jobs();
    let baseline =
        vbench::transcode_batch_resilient(&Engine, &jobs, 2, &ResilienceConfig::default())
            .expect("uninterrupted baseline");

    let points = [
        (CrashPoint::PreEncode, 2usize),
        (CrashPoint::PostEncode, 1),
        (CrashPoint::PreJournalFlush, 3),
    ];
    for (point, crash_job) in points {
        for workers in [1usize, 3] {
            let path = temp_journal(&format!("{point}-{crash_job}-w{workers}"));
            let policy = ResilienceConfig::default()
                .with_fault_plan(FaultPlan::new().with_crash(crash_job, point));

            let err =
                run_batch_journaled(&Engine, &jobs, workers, &policy, &JournalConfig::new(&path))
                    .expect_err("scripted crash must abort the batch");
            assert!(
                matches!(err, JournalError::Crashed { job, point: p } if job == crash_job && p == point),
                "wrong crash surfaced: {err} ({point}, workers={workers})"
            );

            // Resume with the SAME plan: the crash is keyed to run 0 and
            // must not re-fire on run 1.
            let engine = CountingEngine::default();
            let report = run_batch_journaled(
                &engine,
                &jobs,
                workers,
                &policy,
                &JournalConfig::new(&path).with_resume(true),
            )
            .expect("resume completes");

            let ctx = format!("{point} job {crash_job}, workers={workers}");
            assert_eq!(report.summary.completed, jobs.len(), "{ctx}");
            assert_eq!(report.summary.failed, 0, "{ctx}");
            // Zero re-encodes of journaled jobs: the engine ran exactly
            // once per job that did NOT replay.
            assert_eq!(
                engine.calls(),
                jobs.len() - report.summary.replayed,
                "{ctx}: replayed jobs must cost no encode work"
            );
            for (i, (r, b)) in report.results.iter().zip(&baseline.results).enumerate() {
                let resumed = r.success().expect("resumed job ok");
                let base = b.success().expect("baseline job ok");
                assert_eq!(resumed.bytes(), base.bytes(), "{ctx}: job {i} bytes");
                if let Some(o) = resumed.as_replayed() {
                    assert_eq!(r.attempts, 0, "{ctx}: replays run no attempts");
                    assert_eq!(o.crc32, vpack::crc32(&o.bytes), "{ctx}: job {i} CRC");
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn single_worker_crashes_replay_exactly_the_completed_prefix() {
    // With one worker jobs run in order, so the journal contents at each
    // crash point are exact — pin them.
    let jobs = jobs();
    let cases = [
        // Crash before job 2 encodes: jobs 0 and 1 are durable.
        (CrashPoint::PreEncode, 2usize, 2usize),
        // Crash after job 1 encoded but before its record: only job 0
        // is durable — the encode of job 1 is lost, exactly as a real
        // kill between encode and append would lose it.
        (CrashPoint::PostEncode, 1, 1),
        // Crash mid-append of job 3's record: the torn line must be
        // quarantined, leaving jobs 0..=2 durable.
        (CrashPoint::PreJournalFlush, 3, 3),
    ];
    for (point, crash_job, expect_replayed) in cases {
        let path = temp_journal(&format!("prefix-{point}"));
        let policy = ResilienceConfig::default()
            .with_fault_plan(FaultPlan::new().with_crash(crash_job, point));
        run_batch_journaled(&Engine, &jobs, 1, &policy, &JournalConfig::new(&path))
            .expect_err("crash");
        if point == CrashPoint::PreJournalFlush {
            let bytes = std::fs::read(&path).expect("journal readable");
            assert_ne!(bytes.last(), Some(&b'\n'), "{point}: journal must end torn");
        }
        let engine = CountingEngine::default();
        let report = run_batch_journaled(
            &engine,
            &jobs,
            1,
            &policy,
            &JournalConfig::new(&path).with_resume(true),
        )
        .expect("resume");
        assert_eq!(report.summary.replayed, expect_replayed, "{point}");
        assert!(report.summary.replayed > 0, "{point}: resume must replay work");
        assert_eq!(engine.calls(), jobs.len() - expect_replayed, "{point}");
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn resumed_journal_survives_a_second_resume() {
    // A resumed run rewrites (compacts) a damaged journal; the result
    // must itself be a valid journal: a second resume replays everything.
    let jobs = jobs();
    let path = temp_journal("twice");
    let policy = ResilienceConfig::default()
        .with_fault_plan(FaultPlan::new().with_crash(2, CrashPoint::PreJournalFlush));
    run_batch_journaled(&Engine, &jobs, 1, &policy, &JournalConfig::new(&path)).expect_err("crash");
    run_batch_journaled(&Engine, &jobs, 1, &policy, &JournalConfig::new(&path).with_resume(true))
        .expect("first resume");
    let engine = CountingEngine::default();
    let report = run_batch_journaled(
        &engine,
        &jobs,
        2,
        &policy,
        &JournalConfig::new(&path).with_resume(true),
    )
    .expect("second resume");
    assert_eq!(report.summary.replayed, jobs.len(), "everything is durable now");
    assert_eq!(engine.calls(), 0, "a fully-journaled batch runs zero encodes");
    let _ = std::fs::remove_file(&path);
}

/// SIGKILLs a real `vbench batch` child once its journal holds at least
/// one durable job record, appends garbage to simulate a torn tail, then
/// resumes and proves the outputs are byte-identical to an uninterrupted
/// run's.
#[test]
fn sigkill_mid_batch_then_resume_completes_byte_identical() {
    use std::process::{Command, Stdio};

    let exe = env!("CARGO_BIN_EXE_vbench");
    let mut dir = std::env::temp_dir();
    dir.push(format!("vbench-sigkill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let dir = dir.to_str().expect("utf8 temp dir").to_string();

    let videos = "desktop,cat,girl";
    // The last job (index 2) straggles, holding the batch open long
    // enough for the kill to land mid-run. Straggle only adds latency —
    // bytes are unaffected — so the baseline can skip the plan.
    let plan = "straggle=2:5";
    let journal = format!("{dir}/journal.jsonl");

    let baseline = Command::new(exe)
        .args(["batch", "--videos", videos, "--workers", "2"])
        .args(["--out-dir", &format!("{dir}/out-base")])
        .output()
        .expect("baseline run");
    assert!(baseline.status.success(), "baseline failed: {baseline:?}");

    let mut child = Command::new(exe)
        .args(["batch", "--videos", videos, "--workers", "2"])
        .args(["--journal", &journal, "--fault-plan", plan])
        .args(["--out-dir", &format!("{dir}/out-interrupted")])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn batch");

    // Wait for one complete (newline-terminated) job record, then kill.
    // Records are fsync'd before the job publishes, so a record we can
    // see is durable.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let txt = std::fs::read_to_string(&journal).unwrap_or_default();
        if txt.lines().any(|l| l.contains("\"kind\":\"job\"")) {
            break;
        }
        if let Some(status) = child.try_wait().expect("poll child") {
            panic!("child exited before kill: {status:?}; journal:\n{txt}");
        }
        assert!(std::time::Instant::now() < deadline, "no job record within 60 s:\n{txt}");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    // A real kill can tear a write; make sure resume handles one even if
    // this kill didn't: append half a record with no newline.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&journal).expect("open journal");
        f.write_all(b"{\"kind\":\"job\",\"job\":9,\"st").expect("append torn tail");
    }

    let resumed = Command::new(exe)
        .args(["batch", "--videos", videos, "--workers", "2"])
        .args(["--journal", &journal, "--resume", "--fault-plan", plan])
        .args(["--out-dir", &format!("{dir}/out-resumed")])
        .output()
        .expect("resume run");
    assert!(
        resumed.status.success(),
        "resume failed: {}\n{}",
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&resumed.stderr),
    );
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    let replayed: usize = stdout
        .lines()
        .find(|l| l.contains("replayed"))
        .and_then(|l| l.split_whitespace().rev().nth(1).map(str::to_string))
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no replayed count in stdout:\n{stdout}"));
    assert!(replayed >= 1, "the record observed before the kill must replay:\n{stdout}");

    for name in videos.split(',') {
        let base = std::fs::read(format!("{dir}/out-base/{name}.vbs")).expect("baseline output");
        let res = std::fs::read(format!("{dir}/out-resumed/{name}.vbs")).expect("resumed output");
        assert_eq!(base, res, "{name}: resumed bytes differ from uninterrupted run");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
