//! The engine refactor's contract: routing a transcode through
//! `vbench::engine` is *observationally identical* to the old direct
//! `vcodec::encode` / `vhw` call sites it replaced — same bytes, same
//! bitrate, same quality, and (for the deterministic hardware model) the
//! same full measurement. These tests pin that equivalence for both
//! backends and for the paper's quality-target bisection methodology.

use vbench::engine::{transcode, RateMode, TranscodeRequest};
use vbench::measure::Measurement;
use vcodec::{CodecFamily, EncoderConfig, Preset, RateControl};
use vframe::color::{frame_from_fn, Yuv};
use vframe::metrics::psnr_video;
use vframe::{Resolution, Video};
use vhw::{bisect_bitrate, HwEncoder, HwVendor};

fn clip(frames: usize) -> Video {
    let res = Resolution::new(96, 64);
    let fs = (0..frames)
        .map(|t| {
            frame_from_fn(res, |x, y| {
                Yuv::new(((x * 3 + y * 2 + 7 * t as u32) % 256) as u8, 128, 128)
            })
        })
        .collect();
    Video::new(fs, 30.0)
}

/// Asserts the deterministic axes of two measurements agree exactly
/// (software speed is wall clock, so it is excluded on software paths).
fn assert_deterministic_axes_eq(engine: &Measurement, direct: &Measurement) {
    assert_eq!(engine.bitrate_bpps, direct.bitrate_bpps, "bitrate must match exactly");
    assert_eq!(engine.quality_db, direct.quality_db, "quality must match exactly");
}

#[test]
fn software_paths_are_byte_identical_across_rate_modes() {
    let v = clip(6);
    let cases = [
        RateControl::ConstQuality { crf: 28.0 },
        RateControl::Bitrate { bps: 600_000 },
        RateControl::TwoPassBitrate { bps: 600_000 },
    ];
    for family in [CodecFamily::Avc, CodecFamily::Vp9] {
        for rate in cases {
            let cfg = EncoderConfig::new(family, Preset::Fast, rate);
            let direct = vcodec::encode(&v, &cfg);
            let outcome =
                transcode(&v, &TranscodeRequest::from_config(&cfg)).expect("engine transcode");
            assert_eq!(outcome.output.bytes, direct.bytes, "{family} {rate:?}");
            assert_eq!(outcome.output.recon.frame(3), direct.recon.frame(3));
            assert_deterministic_axes_eq(
                &outcome.measurement,
                &Measurement::from_encode(&v, &direct),
            );
        }
    }
}

#[test]
fn software_knobs_carry_through_the_engine() {
    let v = clip(5);
    let cfg = EncoderConfig::new(
        CodecFamily::Avc,
        Preset::Medium,
        RateControl::ConstQuality { crf: 30.0 },
    )
    .with_gop(4)
    .with_bframes()
    .without_deblock()
    .with_entropy_backend(vcodec::entropy::EntropyBackend::Vlc);
    let direct = vcodec::encode(&v, &cfg);
    let outcome = transcode(&v, &TranscodeRequest::from_config(&cfg)).expect("engine transcode");
    assert_eq!(outcome.output.bytes, direct.bytes);
}

#[test]
fn software_quality_target_matches_manual_bisection() {
    // Table 5's loop, hand-rolled exactly as the pre-engine driver did.
    let v = clip(5);
    let family = CodecFamily::Hevc;
    let bps = 900_000u64;
    let target_db = {
        let cfg =
            EncoderConfig::new(CodecFamily::Avc, Preset::Fast, RateControl::TwoPassBitrate { bps });
        psnr_video(&v, &vcodec::encode(&v, &cfg).recon)
    };
    let encode_at = |b: u64| {
        let cfg =
            EncoderConfig::new(family, Preset::VerySlow, RateControl::TwoPassBitrate { bps: b });
        vcodec::encode(&v, &cfg)
    };
    let chosen =
        bisect_bitrate(bps / 8, bps * 4, target_db, 8, |b| psnr_video(&v, &encode_at(b).recon))
            .map_or(bps, |r| r.bitrate_bps);
    let direct = encode_at(chosen);

    let req = TranscodeRequest::software(
        family,
        Preset::VerySlow,
        RateMode::QualityTarget {
            target_db,
            lo_bps: bps / 8,
            hi_bps: bps * 4,
            fallback_bps: Some(bps),
        },
    );
    let outcome = transcode(&v, &req).expect("engine transcode");
    assert_eq!(outcome.chosen_bps, Some(chosen), "bisection must settle identically");
    assert_eq!(outcome.output.bytes, direct.bytes);
    assert_deterministic_axes_eq(&outcome.measurement, &Measurement::from_encode(&v, &direct));
}

#[test]
fn hardware_bitrate_path_reproduces_direct_model_exactly() {
    let v = clip(5);
    for vendor in HwVendor::ALL {
        let direct = HwEncoder::new(vendor).encode_bitrate(&v, 500_000);
        let req = TranscodeRequest::hardware(vendor, RateMode::Bitrate { bps: 500_000 });
        let outcome = transcode(&v, &req).expect("engine transcode");
        assert_eq!(outcome.output.bytes, direct.output.bytes, "{vendor}");
        // The hardware model is fully deterministic (modelled speed), so
        // the *entire* measurement must match, speed included.
        let m =
            Measurement::from_encode_with_speed(&v, &direct.output, direct.speed_pixels_per_sec);
        assert_eq!(outcome.measurement, m, "{vendor}");
        assert_eq!(outcome.timings, direct.stages, "{vendor}");
    }
}

#[test]
fn hardware_quality_target_matches_direct_bisection() {
    // Tables 3/4's loop: bisect to the reference quality, fall back to
    // the ladder rate — exactly the pre-engine call shape.
    let v = clip(5);
    let bps = 400_000u64;
    let target_db = 34.0;
    for vendor in HwVendor::ALL {
        let hw = HwEncoder::new(vendor);
        let direct = hw
            .encode_to_quality_target(&v, target_db, bps / 8, bps * 8)
            .unwrap_or_else(|| hw.encode_bitrate(&v, bps));
        let req = TranscodeRequest::hardware(
            vendor,
            RateMode::QualityTarget {
                target_db,
                lo_bps: bps / 8,
                hi_bps: bps * 8,
                fallback_bps: Some(bps),
            },
        );
        let outcome = transcode(&v, &req).expect("engine transcode");
        assert_eq!(outcome.output.bytes, direct.output.bytes, "{vendor}");
        let m =
            Measurement::from_encode_with_speed(&v, &direct.output, direct.speed_pixels_per_sec);
        assert_eq!(outcome.measurement, m, "{vendor}");
    }
}

#[test]
fn reference_encodes_route_through_engine_unchanged() {
    use vbench::scenario::Scenario;
    let v = clip(6);
    for scenario in
        [Scenario::Upload, Scenario::Live, Scenario::Vod, Scenario::Popular, Scenario::Platform]
    {
        let cfg = vbench::reference::reference_config(scenario, &v);
        let direct = vcodec::encode(&v, &cfg);
        let (m, out) = vbench::reference::reference_encode(scenario, &v);
        assert_eq!(out.bytes, direct.bytes, "{scenario}");
        assert_eq!(m.quality_db, psnr_video(&v, &direct.recon), "{scenario}");
    }
}
