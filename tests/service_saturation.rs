//! The service layer's replay and saturation-shape contract, end to
//! end: the `SAT` report must be byte-identical at any worker count,
//! sheds must not start below saturation and must not shrink as load
//! grows, and the bounded class queues must hold their bound for every
//! seed, depth, and scenario.

use proptest::prelude::*;
use vbench::engine::Engine;
use vbench::scenario::Scenario;
use vbench::suite::{Suite, SuiteOptions};
use vbench::{
    degraded_saturation_load, estimated_saturation_load, run_saturation, simulate_service,
    video_profiles, ServiceConfig, VideoProfile,
};

/// A small catalog keeps the real-encode proof cheap: the virtual model
/// still sees every arrival, only the deduplicated mix shrinks.
fn profiles(scenario: Scenario) -> Vec<VideoProfile> {
    let mut p = video_profiles(&Suite::vbench(&SuiteOptions::tiny()), scenario);
    p.truncate(3);
    p
}

fn config(scenario: Scenario, load: f64) -> ServiceConfig {
    let mut c = ServiceConfig::new(scenario, load, 8.0);
    c.capacity = 2;
    c.queue_depth = 6;
    c
}

/// The acceptance criterion verbatim: one sweep, two worker counts,
/// byte-identical `SAT_*.json` documents. The worker count only moves
/// wall-clock time — every value in the report is derived from the
/// virtual-time model or the farm's deterministic bitstreams.
#[test]
fn sat_report_is_byte_identical_across_worker_counts() {
    let p = profiles(Scenario::Popular);
    let base = config(Scenario::Popular, 0.0);
    let sat = estimated_saturation_load(&p, base.capacity);
    let sat_deg = degraded_saturation_load(&p, base.capacity);
    // One underloaded point, one in the degradation band, one shedding.
    let loads = vec![0.5 * sat, 1.5 * sat, 1.5 * sat_deg];

    let serial = run_saturation(&base, &loads, &p, &Engine, 1, None).expect("serial sweep");
    let wide = run_saturation(&base, &loads, &p, &Engine, 4, None).expect("parallel sweep");

    assert!(serial.proof.unique_encodes > 0, "the sweep must encode something for real");
    assert_eq!(serial.proof, wide.proof, "encode proof must not depend on workers");
    assert_eq!(serial.to_json(), wide.to_json(), "SAT bytes must not depend on workers");
}

/// Below saturation nothing is shed; past it the shed rate can only
/// grow with offered load — for every service scenario, not just the
/// one the CLI sweep defaults to.
#[test]
fn shed_rate_is_zero_below_saturation_and_monotone_in_load() {
    for scenario in [Scenario::Upload, Scenario::Popular, Scenario::Live] {
        let p = profiles(scenario);
        let base = config(scenario, 0.0);
        let sat = estimated_saturation_load(&p, base.capacity);

        for mult in [0.2, 0.4, 0.6] {
            let point = simulate_service(&config(scenario, sat * mult), &p);
            assert!(point.offered > 0, "{scenario}: load {mult} offered nothing");
            assert_eq!(point.shed, 0, "{scenario}: shed below saturation at {mult}x");
        }

        // The sweep grid mirrors the CLI default: below the undegraded
        // saturation point the service is simply underloaded; between it
        // and the fully-degraded one the pre-armed controller absorbs
        // the excess by downshifting presets; past that, shedding is
        // steady state and can only climb.
        let sat_deg = degraded_saturation_load(&p, base.capacity);
        let loads: Vec<f64> = [0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|m| m * sat)
            .chain([1.25, 1.75, 2.5].iter().map(|m| m * sat_deg))
            .collect();
        let mut last_rate = 0.0;
        for load in loads {
            let point = simulate_service(&config(scenario, load), &p);
            let rate = point.shed_rate();
            assert!(
                rate >= last_rate,
                "{scenario}: shed rate fell from {last_rate} to {rate} at load {load}/s"
            );
            last_rate = rate;
        }
        assert!(last_rate > 0.0, "{scenario}: deep overload must shed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// For any seed, depth, load multiple, and scenario: the bounded
    /// queue never exceeds its configured depth, the shed ledger is
    /// complete (count == events), admission accounting holds, and
    /// re-simulating replays the exact shed sequence.
    #[test]
    fn bounded_queues_hold_and_sheds_replay(
        seed in any::<u32>(),
        depth in 1usize..6,
        mult in 1u32..6,
        scen in 0usize..3,
    ) {
        let scenario = [Scenario::Upload, Scenario::Popular, Scenario::Live][scen];
        let p = profiles(scenario);
        let mut c = ServiceConfig::new(scenario, 0.0, 4.0);
        c.capacity = 1;
        c.queue_depth = depth;
        c.seed = seed as u64;
        c.offered_load = estimated_saturation_load(&p, c.capacity) * mult as f64;

        let a = simulate_service(&c, &p);
        prop_assert!(a.queue_peak <= depth, "peak {} over depth {depth}", a.queue_peak);
        prop_assert_eq!(a.shed, a.shed_events.len() as u64);
        prop_assert!(a.admitted <= a.offered);
        prop_assert!(a.completed <= a.admitted);

        let b = simulate_service(&c, &p);
        prop_assert_eq!(a.shed, b.shed);
        prop_assert_eq!(a.shed_events.len(), b.shed_events.len());
        for (x, y) in a.shed_events.iter().zip(&b.shed_events) {
            prop_assert_eq!(
                (x.seq, x.at_us, x.name, x.rank, x.reason),
                (y.seq, y.at_us, y.name, y.rank, y.reason)
            );
        }
    }
}
