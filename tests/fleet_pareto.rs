//! Cost-plane integration: the predictor's calibration and monotonicity
//! guarantees, and the pareto frontier's acceptance criteria — the
//! cost-aware plan never loses to the homogeneous baseline, and the
//! report is byte-identical at any worker count.

use proptest::prelude::*;
use vbench::engine::Engine;
use vbench::fleet::pareto::{pareto_report, plan_jobs, DEADLINE_MULT_GRID};
use vbench::fleet::predict::{predict_work_pixels, WORK_SAMPLES_PER_PIXEL};
use vbench::fleet::{plan_fleet, predict_encode_secs, uniform_plan, JobFeatures};
use vbench::reference::reference_config;
use vbench::scenario::Scenario;
use vbench::service::{video_profiles, ServiceConfig};
use vbench::suite::{Suite, SuiteOptions};
use vcodec::Preset;
use vhw::InstanceCatalog;

/// The calibration round-trip: predicted software work, converted to
/// kernel samples through `WORK_SAMPLES_PER_PIXEL`, must land within a
/// ±15% multiplicative bound of the real encoder's machine-independent
/// sample count on the seed corpus. All 15 suite videos are encoded for
/// the single-pass Upload and Live references; Popular's two-pass
/// `VerySlow` references dominate encode time, so a 4-video
/// resolution/entropy spread stands in (the bound was fitted and holds
/// on the full 45-encode grid).
#[test]
fn predictor_calibrates_within_fifteen_percent_on_the_seed_corpus() {
    let suite = Suite::vbench(&SuiteOptions::tiny());
    let popular_subset = ["cat", "desktop", "girl", "hall"];
    for scenario in [Scenario::Upload, Scenario::Popular, Scenario::Live] {
        for v in suite.iter() {
            if scenario == Scenario::Popular && !popular_subset.contains(&v.name) {
                continue;
            }
            let video = v.generate();
            let cfg = reference_config(scenario, &video);
            let enc = vcodec::encode(&video, &cfg);
            let measured = enc.stats.kernels.total_samples() as f64;
            let features = JobFeatures {
                pixels_per_frame: v.spec.resolution.pixels(),
                frames: v.spec.frames as u64,
                fps: v.spec.fps,
                entropy: v.category.entropy,
                preset: cfg.preset,
            };
            let predicted = predict_work_pixels(&features) * WORK_SAMPLES_PER_PIXEL;
            let ratio = predicted / measured;
            assert!(
                (1.0 / 1.15..=1.15).contains(&ratio),
                "{scenario:?} {}: predicted {predicted:.3e} samples vs measured \
                 {measured:.3e} (ratio {ratio:.3} outside the 15% bound)",
                v.name,
            );
        }
    }
}

/// ISSUE acceptance: for every scoring scenario, at every grid point,
/// the cost-aware plan is never lexicographically worse than the
/// homogeneous baseline in (misses, dollars); and at the scenario's own
/// deadline (multiplier 1.0) it achieves equal-or-lower miss rate at
/// equal-or-lower dollar cost.
#[test]
fn cost_aware_plan_never_loses_to_the_homogeneous_baseline() {
    let suite = Suite::vbench(&SuiteOptions::tiny());
    let catalog = InstanceCatalog::default_fleet();
    for scenario in [Scenario::Upload, Scenario::Popular, Scenario::Live] {
        let profiles = video_profiles(&suite, scenario);
        let config = ServiceConfig::new(scenario, 6.0, 10.0);
        for &mult in DEADLINE_MULT_GRID {
            let jobs = plan_jobs(&config, &profiles, mult);
            assert!(!jobs.is_empty(), "{scenario:?} planned no jobs");
            let plan = plan_fleet(&jobs, &catalog, config.duration_secs);
            let baseline = uniform_plan(&jobs, &catalog, 0, config.duration_secs);
            assert!(
                (plan.deadline_misses, plan.dollar_cost)
                    <= (baseline.deadline_misses, baseline.dollar_cost),
                "{scenario:?} mult {mult}: plan ({}, {}) worse than baseline ({}, {})",
                plan.deadline_misses,
                plan.dollar_cost,
                baseline.deadline_misses,
                baseline.dollar_cost,
            );
            if mult == 1.0 {
                assert!(
                    plan.miss_rate() <= baseline.miss_rate(),
                    "{scenario:?}: cost-aware misses more than the baseline"
                );
                assert!(
                    plan.dollar_cost <= baseline.dollar_cost,
                    "{scenario:?}: cost-aware plan dearer at the scenario deadline \
                     ({} vs {})",
                    plan.dollar_cost,
                    baseline.dollar_cost,
                );
            }
        }
    }
}

/// The report's byte-replay guarantee: the whole frontier — planning
/// *and* the real-encode proof — is byte-identical at any worker count.
/// CI re-checks this through `vbench plan` + `cmp`; this is the same
/// property without process overhead.
#[test]
fn pareto_report_bytes_are_worker_count_invariant() {
    let suite = Suite::vbench(&SuiteOptions::tiny());
    let profiles = video_profiles(&suite, Scenario::Live);
    let subset = &profiles[..4];
    let config = ServiceConfig::new(Scenario::Live, 4.0, 4.0);
    let catalog = InstanceCatalog::default_fleet();
    let one = pareto_report(&config, subset, &catalog, &Engine, 1).expect("workers=1");
    let two = pareto_report(&config, subset, &catalog, &Engine, 2).expect("workers=2");
    assert!(one.proof.unique_encodes > 0, "the proof really encoded something");
    assert_eq!(one.to_json(), two.to_json(), "report bytes depend on worker count");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Predicted encode seconds are monotone non-decreasing in pixels
    /// and entropy for every catalog entry, at every preset — the
    /// planner may rely on "bigger or busier is never cheaper".
    #[test]
    fn predicted_seconds_are_monotone_in_pixels_and_entropy(
        ppf in 64u64..2_000_000,
        extra_pixels in 0u64..2_000_000,
        frames in 1u64..600,
        entropy in 0.0f64..8.0,
        extra_entropy in 0.0f64..4.0,
        preset_idx in 0usize..6,
    ) {
        let fps = 30.0;
        let preset = [
            Preset::UltraFast,
            Preset::VeryFast,
            Preset::Fast,
            Preset::Medium,
            Preset::Slow,
            Preset::VerySlow,
        ][preset_idx];
        let base = JobFeatures { pixels_per_frame: ppf, frames, fps, entropy, preset };
        let more_pixels = JobFeatures { pixels_per_frame: ppf + extra_pixels, ..base };
        let more_entropy = JobFeatures { entropy: entropy + extra_entropy, ..base };
        for entry in InstanceCatalog::default_fleet().entries() {
            let secs = predict_encode_secs(&base, entry);
            prop_assert!(secs > 0.0 && secs.is_finite(), "{}: {secs}", entry.name);
            prop_assert!(
                predict_encode_secs(&more_pixels, entry) >= secs,
                "{}: shrank with pixels", entry.name
            );
            prop_assert!(
                predict_encode_secs(&more_entropy, entry) >= secs,
                "{}: shrank with entropy", entry.name
            );
        }
    }
}
