//! Observability integration: one dispatched batch, profiled three ways.
//!
//! A single `vbench dispatch --trace-out --status-out --log-level
//! verbose` run produces a merged trace, a journal, and a status
//! snapshot; this suite reconciles the `vprof` view of those artifacts
//! against the batch's own ground truth:
//!
//! - the trace's `exec.jobs_completed` counter equals the job count and
//!   every job has a `transcode` span (the analyzer sees all the work);
//! - verbose per-stage spans sum to no more than the encode time they
//!   decompose (Table-5-style attribution cannot invent time);
//! - the folded-stack export is syntactically valid inferno input;
//! - `vbench top --once` renders every worker from the journal without
//!   writing a single byte to it (monitoring is read-only, pinned by a
//!   before/after byte compare);
//! - `vbench bench` output round-trips through `BenchDoc::parse` and
//!   self-compares clean (a run is never a regression against itself).

use std::path::{Path, PathBuf};
use std::process::Command;

use vtrace::json::{self, Value};

const EXE: &str = env!("CARGO_BIN_EXE_vbench");
const VIDEOS: &str = "house,cat";
const JOBS: u64 = 2;

/// A scratch directory in the temp dir, unique per test.
fn temp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("vbench-obs-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("create temp dir");
    p
}

/// Runs one dispatched batch with the full observability surface on and
/// returns `(journal, trace, status)` paths.
fn run_observed_dispatch(dir: &Path) -> (PathBuf, PathBuf, PathBuf) {
    let journal = dir.join("journal.jsonl");
    let trace = dir.join("trace.jsonl");
    let status = dir.join("status.json");
    let out = Command::new(EXE)
        .args(["dispatch", "--videos", VIDEOS, "--procs", "2", "--workers", "1"])
        .args(["--journal", &journal.display().to_string()])
        .args(["--trace-out", &trace.display().to_string()])
        .args(["--status-out", &status.display().to_string()])
        .args(["--log-level", "verbose"])
        .args(["--out-dir", &dir.join("out").display().to_string()])
        .output()
        .expect("run dispatch");
    assert!(
        out.status.success(),
        "observed dispatch failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    (journal, trace, status)
}

#[test]
fn vprof_report_reconciles_with_the_batch_and_top_is_read_only() {
    let dir = temp_dir("reconcile");
    let (journal, trace_path, status_path) = run_observed_dispatch(&dir);

    let trace = vprof::Trace::load(&trace_path).expect("trace parses");

    // Counter reconciliation: the merged trace must account for every
    // published job exactly once, and each job carries a transcode span.
    assert_eq!(
        trace.counters.get("exec.jobs_completed").copied(),
        Some(JOBS),
        "exec.jobs_completed must equal the job count; counters: {:?}",
        trace.counters
    );
    let transcodes = trace.spans_named("transcode").count() as u64;
    assert!(transcodes >= JOBS, "expected >= {JOBS} transcode spans, got {transcodes}");

    // Stage attribution: verbose stage spans decompose encode time, so
    // their sum can never exceed the encode seconds they break down.
    let sb = vprof::stage_breakdown(&trace);
    assert_eq!(sb.transcodes, transcodes);
    assert!(sb.encode_secs > 0.0, "transcode spans must carry encode_secs");
    assert!(!sb.stage_us.is_empty(), "verbose run must emit per-stage spans");
    assert!(
        sb.stage_secs_total() <= sb.encode_secs,
        "stage seconds {:.6} exceed encode seconds {:.6}",
        sb.stage_secs_total(),
        sb.encode_secs
    );

    // The critical path ends at real work, not the coordinator umbrella.
    let path = vprof::critical_path(&trace);
    assert!(!path.is_empty(), "critical path must be non-empty");
    assert_eq!(path.last().unwrap().name, "transcode", "path: {path:?}");

    // Folded-stack export: every line is `frame(;frame)* <count>` with a
    // per-process root frame, ready for inferno.
    let folded = vprof::folded_stacks(&trace);
    assert!(!folded.is_empty(), "flame export must be non-empty");
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded line has a count");
        assert!(count.parse::<u64>().is_ok(), "bad count in {line:?}");
        assert!(!stack.is_empty() && !stack.contains(' '), "bad stack in {line:?}");
        assert!(stack.starts_with("pid"), "stack must be rooted at a process: {line:?}");
    }

    // The report renders every section from this real trace.
    let report = vprof::render_report(&trace);
    for needle in ["critical path", "stage attribution", "utilization", "exec.jobs_completed"] {
        assert!(report.contains(needle), "report missing {needle:?}:\n{report}");
    }

    // `top --once` prints every worker's state and never writes to the
    // journal: byte-identical before and after is the read-only pin.
    let journal_before = std::fs::read(&journal).expect("journal readable");
    let top = Command::new(EXE)
        .args(["top", "--journal", &journal.display().to_string(), "--once"])
        .output()
        .expect("run top");
    assert!(top.status.success(), "top --once failed: {top:?}");
    let journal_after = std::fs::read(&journal).expect("journal readable");
    assert_eq!(journal_before, journal_after, "top --once must not write to the journal");
    let view = String::from_utf8_lossy(&top.stdout);
    assert!(view.contains(&format!("jobs {JOBS}  done {JOBS}")), "unexpected header:\n{view}");
    for worker in ["\n     0 ", "\n     1 "] {
        assert!(view.contains(worker), "worker row missing in:\n{view}");
    }

    // The dispatcher's final status snapshot is valid JSON and agrees
    // with the journal-derived view.
    let status = std::fs::read_to_string(&status_path).expect("status.json written");
    let doc = json::parse(&status).expect("status.json is valid JSON");
    assert_eq!(doc.get("jobs").and_then(Value::as_u64), Some(JOBS));
    assert_eq!(doc.get("done").and_then(Value::as_u64), Some(JOBS));
    match doc.get("workers") {
        Some(Value::Array(workers)) => assert_eq!(workers.len(), 2, "two worker rows"),
        other => panic!("workers must be an array, got {other:?}"),
    }

    // The merged trace passes the stream validator (headers rebased,
    // timestamps monotonic per segment). `vtrace-check` lives in the
    // vtrace package, so no CARGO_BIN_EXE_* var points at it from here;
    // a workspace-wide `cargo test` builds it next to `vbench`.
    let check_exe =
        Path::new(EXE).with_file_name(format!("vtrace-check{}", std::env::consts::EXE_SUFFIX));
    if check_exe.exists() {
        let check = Command::new(&check_exe).arg(&trace_path).output().expect("run vtrace-check");
        assert!(
            check.status.success(),
            "vtrace-check rejected the merged trace:\n{}",
            String::from_utf8_lossy(&check.stderr)
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_round_trips_and_self_compares_clean() {
    let dir = temp_dir("bench");
    let out_path = dir.join("BENCH_it.json");
    let out = Command::new(EXE)
        .args(["bench", "--videos", VIDEOS, "--runs", "2", "--workers", "2"])
        .args(["--name", "it", "--out", &out_path.display().to_string()])
        .output()
        .expect("run bench");
    assert!(
        out.status.success(),
        "bench failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );

    let text = std::fs::read_to_string(&out_path).expect("BENCH written");
    let doc = vprof::BenchDoc::parse(&text).expect("BENCH parses");
    assert_eq!(doc.name, "it");
    assert_eq!(doc.runs, 2);
    assert_eq!(doc.scenarios.len(), 2, "one scenario per video");
    for (name, s) in &doc.scenarios {
        assert!(s.encode_secs.mean > 0.0, "{name}: encode stats empty");
        assert!(s.speed_pps.mean > 0.0, "{name}: speed stats empty");
        assert!(s.encode_secs.min <= s.encode_secs.mean, "{name}: min/mean inverted");
        assert!(s.encode_secs.mean <= s.encode_secs.max, "{name}: mean/max inverted");
    }

    // A document can never regress against itself.
    let findings = vprof::compare(&doc, &doc, &vprof::CompareOptions::default());
    assert!(findings.is_empty(), "self-compare found regressions: {findings:?}");

    // Dropping a scenario from the new side is a regression finding.
    let mut pruned = vprof::BenchDoc::parse(&text).expect("BENCH parses");
    let dropped = pruned.scenarios.keys().next().cloned().expect("has a scenario");
    pruned.scenarios.remove(&dropped);
    let findings = vprof::compare(&doc, &pruned, &vprof::CompareOptions::default());
    assert_eq!(findings.len(), 1, "missing scenario must be flagged: {findings:?}");
    assert_eq!(findings[0].scenario, dropped);

    let _ = std::fs::remove_dir_all(&dir);
}
