//! Paper-shape reproduction checks: the qualitative claims of each figure
//! and table, asserted on debug-scale runs. (Quantitative runs live in the
//! bench harness; see EXPERIMENTS.md.)

use varch::{cycle_breakdown, isa_ladder, IsaTier, MachineConfig, UarchSim};
use vbench::figures::{growth_gap, normalized_growth};
use vbench::reference::reference_config;
use vbench::scenario::Scenario;
use vbench::suite::{Suite, SuiteOptions};
use vcodec::encode_with_probe;
use vcorpus::corpus::CorpusModel;
use vcorpus::coverage::coverage_fraction;
use vcorpus::datasets;
use vcorpus::selection::{select_suite, SelectionConfig};
use vcorpus::VideoCategory;

#[test]
fn fig1_uploads_outpace_cpus() {
    assert!(growth_gap() > 3.0);
    let series = normalized_growth();
    assert_eq!(series.len(), 11);
}

#[test]
fn fig4_vbench_coverage_beats_all_public_datasets() {
    let corpus = CorpusModel::new().sample_categories(20_000, 99);
    let radius = 0.35;
    let cover = |profile: &vcorpus::DatasetProfile| {
        let pts: Vec<VideoCategory> = profile.videos.iter().map(|v| v.category).collect();
        coverage_fraction(&pts, &corpus, radius)
    };
    let vb = cover(&datasets::vbench_table2());
    for other in [datasets::netflix(), datasets::spec2017(), datasets::spec2006()] {
        let c = cover(&other);
        assert!(vb > c, "vbench {vb} must beat {} ({c})", other.name);
    }
}

#[test]
fn tab2_selection_pipeline_produces_fifteen_representatives() {
    let corpus = CorpusModel::new().sample_categories(20_000, 4);
    let suite = select_suite(&corpus, &SelectionConfig::default());
    assert_eq!(suite.len(), 15);
    let total_share: f64 = suite.iter().map(|s| s.share).sum();
    assert!((total_share - 1.0).abs() < 1e-9);
}

/// Runs the VOD reference with the simulator attached on one suite video.
fn simulate(name: &str) -> varch::UarchReport {
    let suite = Suite::vbench(&SuiteOptions::tiny());
    let video = suite.by_name(name).expect("table 2 video").generate();
    let cfg = reference_config(Scenario::Vod, &video);
    // Tiny clips need a proportionally small LLC for capacity pressure
    // (see `bench::experiments::machine_for`).
    let mut sim = UarchSim::new(MachineConfig { llc_bytes: 64 * 1024, ..MachineConfig::default() });
    let _ = encode_with_probe(&video, &cfg, &mut sim);
    sim.report()
}

#[test]
fn fig5_entropy_trends_in_microarchitecture() {
    // desktop: entropy 0.2; girl: entropy 5.9 — both 720p-class, so the
    // comparison isolates entropy (LLC traffic scales with resolution,
    // instructions with content complexity). The Figure 5 trends:
    // front-end pressure rises with entropy, LLC MPKI falls.
    let low = simulate("desktop");
    let high = simulate("girl");
    assert!(
        high.icache_mpki > low.icache_mpki,
        "I$ MPKI should rise with entropy: {} vs {}",
        high.icache_mpki,
        low.icache_mpki
    );
    assert!(
        high.llc_mpki < low.llc_mpki,
        "LLC MPKI should fall with entropy: {} vs {}",
        high.llc_mpki,
        low.llc_mpki
    );
}

#[test]
fn fig6_topdown_shape() {
    let r = simulate("cricket");
    let td = r.topdown;
    assert!((td.sum() - 1.0).abs() < 1e-9);
    // "60% of the time is either retiring instructions or waiting for the
    // back-end functional units" — generous band for the tiny run.
    assert!(td.useful_or_core() > 0.35, "RET+CORE {}", td.useful_or_core());
    assert!(td.frontend < 0.5);
    assert!(td.bad_speculation < 0.4);
}

#[test]
fn fig7_scalar_fraction_dominates_and_avx2_is_minor() {
    let r = simulate("cricket");
    let b = cycle_breakdown(&r.counters, IsaTier::Avx2);
    assert!((0.35..0.9).contains(&b.scalar_fraction()), "scalar fraction {}", b.scalar_fraction());
    assert!(b.vec256_fraction() < 0.3, "AVX2 fraction {}", b.vec256_fraction());
}

#[test]
fn fig8_isa_ladder_saturates() {
    let r = simulate("girl");
    let ladder = isa_ladder(&r.counters);
    let total =
        |tier: IsaTier| ladder.iter().find(|(t, _)| *t == tier).expect("tier in ladder").1.total();
    // Large jump scalar -> SSE2; small SSE2 -> AVX2 (the paper: ~15%).
    assert!(total(IsaTier::Scalar) / total(IsaTier::Sse2) > 1.8);
    let late = total(IsaTier::Sse2) / total(IsaTier::Avx2);
    assert!((1.0..1.8).contains(&late), "sse2/avx2 {late}");
}

#[test]
fn suite_generation_covers_all_resolution_tiers() {
    let suite = Suite::vbench(&SuiteOptions::tiny());
    let kpix: std::collections::BTreeSet<u32> = suite.iter().map(|v| v.category.kpixels).collect();
    assert_eq!(kpix.len(), 4, "Table 2 spans four resolutions: {kpix:?}");
}
