//! End-to-end telemetry integration.
//!
//! A traced run must produce a JSONL stream that agrees with the printed
//! report, must not perturb stdout by a single byte, and the CLI must
//! keep usage errors (exit 2) distinct from runtime failures (exit 1).

use std::process::{Command, Stdio};

use vbench::engine::{Backend, Engine, RateMode, TranscodeRequest};
use vbench::farm::{transcode_batch_with, EngineJob};
use vcodec::{CodecFamily, Preset};
use vframe::color::{frame_from_fn, Yuv};
use vframe::{Resolution, Video};
use vtrace::json;

fn vbench() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vbench"))
}

/// Parses the batch report table on stdout into `(name, bytes)` rows.
/// Columns: video, status, attempts, bytes, Mpix/s.
fn table_rows(stdout: &str) -> Vec<(String, u64)> {
    stdout
        .lines()
        .skip(2) // header + rule
        .take_while(|l| !l.trim().is_empty())
        .map(|l| {
            let mut cols = l.split_whitespace();
            let name = cols.next().expect("video column").to_string();
            let status = cols.next().expect("status column");
            assert_eq!(status, "ok", "job {name} failed in an uninjected batch");
            let _attempts = cols.next().expect("attempts column");
            let bytes = cols.next().expect("bytes column").parse().expect("byte count");
            (name, bytes)
        })
        .collect()
}

#[test]
fn traced_batch_emits_valid_jsonl_matching_the_report() {
    let trace_path =
        std::env::temp_dir().join(format!("vbench-trace-{}.jsonl", std::process::id()));
    let trace_path = trace_path.to_str().expect("utf-8 temp path").to_string();

    // Run the traced and untraced batches concurrently; the suite and
    // engine are deterministic, so their reports must agree.
    let traced = vbench()
        .args(["batch", "--scale", "tiny", "--workers", "4", "--trace-out", &trace_path])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn traced vbench batch");
    let plain = vbench()
        .args(["batch", "--scale", "tiny", "--workers", "4"])
        .output()
        .expect("run untraced vbench batch");
    let traced = traced.wait_with_output().expect("traced vbench batch");
    assert!(traced.status.success(), "traced batch failed: {traced:?}");
    assert!(plain.status.success(), "untraced batch failed");

    // Tracing must not change stdout by a single byte. (The wall-clock
    // summary line differs run to run, so compare only the table.)
    let traced_stdout = String::from_utf8(traced.stdout).expect("utf-8 stdout");
    let plain_stdout = String::from_utf8(plain.stdout).expect("utf-8 stdout");
    let rows = table_rows(&traced_stdout);
    assert_eq!(rows, table_rows(&plain_stdout), "tracing changed the report table");
    assert!(!rows.is_empty(), "batch printed no rows:\n{traced_stdout}");

    // The trace file is one valid JSON object per line.
    let jsonl = std::fs::read_to_string(&trace_path).expect("read trace file");
    std::fs::remove_file(&trace_path).ok();
    let events: Vec<json::Value> = jsonl
        .lines()
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("invalid JSONL line {l:?}: {e}")))
        .collect();
    assert!(!events.is_empty(), "trace file is empty");

    let spans: Vec<&json::Value> = events
        .iter()
        .filter(|e| e.get("kind").and_then(json::Value::as_str) == Some("span"))
        .collect();
    let named = |n: &str| {
        spans
            .iter()
            .filter(|s| s.get("name").and_then(json::Value::as_str) == Some(n))
            .copied()
            .collect::<Vec<_>>()
    };

    // Every batch job produced exactly one transcode span, and the span's
    // recorded output size agrees with the printed byte count.
    let transcodes = named("transcode");
    assert_eq!(transcodes.len(), rows.len(), "one transcode span per job");
    let mut span_bits: Vec<u64> = transcodes
        .iter()
        .map(|s| {
            let fields = s.get("fields").expect("span fields");
            for key in ["backend", "codec", "preset", "rate_mode"] {
                assert!(fields.get(key).and_then(json::Value::as_str).is_some(), "missing {key}");
            }
            assert!(fields.get("frames").and_then(json::Value::as_u64).unwrap() > 0);
            assert!(fields.get("encode_secs").and_then(json::Value::as_f64).unwrap() > 0.0);
            assert!(fields.get("psnr_db").and_then(json::Value::as_f64).unwrap() > 0.0);
            fields.get("bits").and_then(json::Value::as_u64).expect("bits field")
        })
        .collect();
    let mut report_bits: Vec<u64> = rows.iter().map(|(_, bytes)| bytes * 8).collect();
    span_bits.sort_unstable();
    report_bits.sort_unstable();
    assert_eq!(span_bits, report_bits, "span bits disagree with the printed table");

    // The farm recorded the batch shape, and every transcode nests under
    // a worker which nests under the batch.
    let batch = named("farm.batch");
    assert_eq!(batch.len(), 1);
    let fields = batch[0].get("fields").expect("batch fields");
    assert_eq!(fields.get("jobs").and_then(json::Value::as_u64), Some(rows.len() as u64));
    assert_eq!(fields.get("workers").and_then(json::Value::as_u64), Some(4));
    let batch_id = batch[0].get("id").and_then(json::Value::as_u64).expect("batch id");
    let worker_ids: Vec<u64> = named("farm.worker")
        .iter()
        .map(|w| w.get("id").and_then(json::Value::as_u64).unwrap())
        .collect();
    for w in named("farm.worker") {
        assert_eq!(w.get("parent").and_then(json::Value::as_u64), Some(batch_id));
    }
    for t in &transcodes {
        let parent = t.get("parent").and_then(json::Value::as_u64).expect("transcode parent");
        assert!(worker_ids.contains(&parent), "transcode not under a worker");
    }

    // Counters made it into the stream.
    let counter = |name: &str| {
        events
            .iter()
            .find(|e| {
                e.get("kind").and_then(json::Value::as_str) == Some("counter")
                    && e.get("name").and_then(json::Value::as_str) == Some(name)
            })
            .and_then(|e| e.get("value"))
            .and_then(json::Value::as_u64)
    };
    assert_eq!(counter("engine.requests"), Some(rows.len() as u64));
    assert_eq!(counter("farm.jobs_completed"), Some(rows.len() as u64));
    // The executor core's telemetry reconciles with the batch summary:
    // in an uninjected in-process batch every job is claimed exactly
    // once and published exactly once.
    assert_eq!(counter("exec.leases_granted"), Some(rows.len() as u64));
    assert_eq!(counter("exec.jobs_completed"), Some(rows.len() as u64));
}

fn small_video(seed: u32) -> Video {
    let res = Resolution::new(64, 36);
    let frames = (0..6)
        .map(|t| {
            frame_from_fn(res, |x, y| {
                Yuv::new(((x * 3 + y * 2 + 11 * t + seed) % 256) as u8, 128, 128)
            })
        })
        .collect();
    Video::new(frames, 30.0)
}

/// In-process: the per-request `encode_secs` recorded on transcode spans
/// must sum to the farm's reported CPU seconds (they are the same
/// timings, so the 5% tolerance is generous), and per-job fields must
/// match the returned measurements. This is the only test that touches
/// the in-process tracing globals.
#[test]
fn span_fields_agree_with_batch_outcomes() {
    vtrace::set_level(vtrace::Level::Summary);
    let _ = vtrace::drain();

    let jobs: Vec<EngineJob> = [
        ("crf", RateMode::ConstQuality { crf: 30.0 }),
        ("cbr", RateMode::Bitrate { bps: 200_000 }),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, (name, rate))| {
        EngineJob::new(
            name,
            small_video(i as u32 * 37),
            TranscodeRequest::new(Backend::Software(CodecFamily::Avc), Preset::UltraFast, rate),
        )
    })
    .collect();
    let report = transcode_batch_with(&Engine, &jobs, 2).expect("batch transcode");

    let trace = vtrace::drain();
    vtrace::set_level(vtrace::Level::Off);

    let transcodes: Vec<_> = trace.spans.iter().filter(|s| s.name == "transcode").collect();
    assert_eq!(transcodes.len(), report.results.len());

    let span_cpu: f64 = transcodes
        .iter()
        .map(|s| s.field("encode_secs").and_then(vtrace::FieldValue::as_f64).expect("encode_secs"))
        .sum();
    let tolerance = (report.cpu_secs * 0.05).max(1e-6);
    assert!(
        (span_cpu - report.cpu_secs).abs() <= tolerance,
        "span encode_secs sum {span_cpu} vs batch cpu_secs {}",
        report.cpu_secs
    );

    for result in &report.results {
        let outcome = result.success().expect("batch job succeeds");
        let bits = outcome.bytes().len() as u64 * 8;
        let span = transcodes
            .iter()
            .find(|s| s.field("bits").and_then(vtrace::FieldValue::as_u64) == Some(bits))
            .unwrap_or_else(|| panic!("no span with bits={bits}"));
        assert_eq!(
            span.field("frames").and_then(vtrace::FieldValue::as_u64),
            Some(u64::from(outcome.stats().frames)),
        );
        let psnr = span.field("psnr_db").and_then(vtrace::FieldValue::as_f64).expect("psnr_db");
        assert!((psnr - outcome.measurement().quality_db).abs() < 1e-9);
    }
}

#[test]
fn exit_codes_distinguish_usage_from_runtime_errors() {
    // Usage errors exit 2 before any work runs.
    let unknown_cmd = vbench().arg("frobnicate").output().expect("run vbench");
    assert_eq!(unknown_cmd.status.code(), Some(2));
    let bad_level = vbench().args(["suite", "--log-level", "loud"]).output().expect("run vbench");
    assert_eq!(bad_level.status.code(), Some(2));

    // Runtime failures exit 1 (and report through the error log).
    let missing_input = vbench()
        .args(["inspect", "--in", "/nonexistent/vbench-no-such-file"])
        .output()
        .expect("run vbench");
    assert_eq!(missing_input.status.code(), Some(1));
    let stderr = String::from_utf8(missing_input.stderr).expect("utf-8 stderr");
    assert!(stderr.contains("[error]"), "runtime failure not logged: {stderr}");
}
