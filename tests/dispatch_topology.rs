//! Multi-process dispatch integration tests: the topology matrix.
//!
//! The invariant under test: a `vbench dispatch` batch produces
//! bitstreams byte-identical to a single-process `vbench batch` run at
//! *any* `(processes × workers-per-process)` topology — including when
//! a worker process dies mid-batch (scripted `worker-kill` fault or a
//! real SIGKILL) and its leased job is reclaimed by a survivor. The
//! journal must end with exactly one job record per job: a dead
//! worker's lease is expired only after the process is reaped, so zero
//! duplicate published records is structural, not probabilistic.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use vtrace::json::{self, Value};

const EXE: &str = env!("CARGO_BIN_EXE_vbench");
const VIDEOS: &str = "desktop,cat,girl";

/// A scratch directory in the temp dir, unique per test.
fn temp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("vbench-dispatch-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("create temp dir");
    p
}

/// Runs `vbench batch` into `out_dir` and asserts success.
fn run_batch(dir: &Path, out_dir: &str, extra: &[&str]) {
    let out = Command::new(EXE)
        .args(["batch", "--videos", VIDEOS, "--workers", "2"])
        .args(["--out-dir", &format!("{}/{out_dir}", dir.display())])
        .args(extra)
        .output()
        .expect("run batch");
    assert!(out.status.success(), "batch failed: {out:?}");
}

/// Runs `vbench dispatch` at the given topology into `out_dir` and
/// asserts success.
fn run_dispatch(dir: &Path, out_dir: &str, procs: usize, workers: usize, extra: &[&str]) {
    let journal = format!("{}/{out_dir}.jsonl", dir.display());
    let out = Command::new(EXE)
        .args(["dispatch", "--videos", VIDEOS, "--journal", &journal])
        .args(["--procs", &procs.to_string(), "--workers", &workers.to_string()])
        .args(["--out-dir", &format!("{}/{out_dir}", dir.display())])
        .args(extra)
        .output()
        .expect("run dispatch");
    assert!(
        out.status.success(),
        "dispatch --procs {procs} --workers {workers} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

/// Asserts every per-video output in `got` is byte-identical to `want`.
fn assert_outputs_identical(dir: &Path, want: &str, got: &str, ctx: &str) {
    for name in VIDEOS.split(',') {
        let base =
            std::fs::read(format!("{}/{want}/{name}.vbs", dir.display())).expect("baseline output");
        let other =
            std::fs::read(format!("{}/{got}/{name}.vbs", dir.display())).expect("topology output");
        assert_eq!(base, other, "{ctx}: {name}.vbs differs from single-process run");
    }
}

/// Asserts the journal holds exactly one job record per job index:
/// worker loss must never yield a duplicate published record.
fn assert_one_record_per_job(journal: &str, jobs: usize, ctx: &str) {
    let text = std::fs::read_to_string(journal).expect("journal readable");
    let mut counts = vec![0usize; jobs];
    for line in text.lines() {
        let parsed = json::parse(line).unwrap_or_else(|e| panic!("{ctx}: bad line {line:?}: {e}"));
        if parsed.get("kind").and_then(Value::as_str) == Some("job") {
            let job = parsed.get("job").and_then(Value::as_u64).expect("job index") as usize;
            counts[job] += 1;
        }
    }
    assert_eq!(counts, vec![1; jobs], "{ctx}: duplicate or missing job records");
}

#[test]
fn topology_matrix_is_byte_identical() {
    let dir = temp_dir("matrix");
    run_batch(&dir, "base", &[]);
    // One process, three threads — the lease ledger with no process
    // boundary crossings beyond the dispatcher itself.
    run_dispatch(&dir, "p1w3", 1, 3, &[]);
    assert_outputs_identical(&dir, "base", "p1w3", "1 proc x 3 workers");
    assert_one_record_per_job(&format!("{}/p1w3.jsonl", dir.display()), 3, "1x3");
    // Three processes, one thread each — every job crosses a process
    // boundary.
    run_dispatch(&dir, "p3w1", 3, 1, &[]);
    assert_outputs_identical(&dir, "base", "p3w1", "3 procs x 1 worker");
    assert_one_record_per_job(&format!("{}/p3w1.jsonl", dir.display()), 3, "3x1");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scripted_worker_kill_is_reclaimed_and_byte_identical() {
    let dir = temp_dir("scripted-kill");
    run_batch(&dir, "base", &[]);
    // The first worker to lease job 1 aborts its whole process at the
    // claim point. The dispatcher must reap it, expire the lease, and a
    // survivor (or respawn) must re-encode the job — the first-lease
    // rule keeps the kill one-shot.
    run_dispatch(&dir, "killed", 2, 1, &["--fault-plan", "crash=1@worker-kill"]);
    assert_outputs_identical(&dir, "base", "killed", "scripted worker kill");
    let journal = format!("{}/killed.jsonl", dir.display());
    assert_one_record_per_job(&journal, 3, "scripted kill");
    let text = std::fs::read_to_string(&journal).expect("journal readable");
    assert!(
        text.lines().any(|l| l.contains("\"kind\":\"expire\"") && l.contains("\"job\":1")),
        "the killed worker's lease on job 1 must have been expired:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGKILLs a real worker process mid-encode (while it holds a lease on
/// a straggling job) and proves the dispatcher reaps it, expires the
/// lease, and the batch still completes byte-identical with exactly one
/// record per job.
#[test]
fn sigkilled_worker_lease_is_reclaimed_by_a_survivor() {
    let dir = temp_dir("sigkill");
    run_batch(&dir, "base", &[]);

    // Job 2 straggles (real sleep, capped at 0.5 s by the resilience
    // layer) — the window in which its leaseholder gets SIGKILLed.
    let plan = "straggle=2:30";
    let journal = format!("{}/sk.jsonl", dir.display());
    let mut child = Command::new(EXE)
        .args(["dispatch", "--videos", VIDEOS, "--journal", &journal])
        .args(["--procs", "2", "--workers", "1", "--fault-plan", plan])
        .args(["--out-dir", &format!("{}/sk", dir.display())])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dispatch");

    // Wait until some worker holds a lease on job 2 with no job record
    // for it yet, then SIGKILL that worker by the pid in its lease.
    let deadline = Instant::now() + Duration::from_secs(60);
    let victim = loop {
        let text = std::fs::read_to_string(&journal).unwrap_or_default();
        let committed =
            text.lines().any(|l| l.contains("\"kind\":\"job\"") && l.contains("\"job\":2,"));
        assert!(!committed, "job 2 committed before the kill window opened:\n{text}");
        let lease = text
            .lines()
            .filter_map(|l| json::parse(l).ok())
            .find(|v| {
                v.get("kind").and_then(Value::as_str) == Some("lease")
                    && v.get("job").and_then(Value::as_u64) == Some(2)
            })
            .and_then(|v| v.get("pid").and_then(Value::as_u64));
        if let Some(pid) = lease {
            break pid;
        }
        if let Some(status) = child.try_wait().expect("poll dispatch") {
            panic!("dispatch exited before the kill: {status:?}\n{text}");
        }
        assert!(Instant::now() < deadline, "no lease on job 2 within 60 s:\n{text}");
        std::thread::sleep(Duration::from_millis(2));
    };
    let killed = Command::new("kill")
        .args(["-9", &victim.to_string()])
        .status()
        .expect("run kill")
        .success();
    assert!(killed, "kill -9 {victim} failed");

    let status = child.wait().expect("dispatch completes");
    assert!(status.success(), "dispatch failed after worker SIGKILL: {status:?}");

    assert_outputs_identical(&dir, "base", "sk", "real SIGKILL");
    assert_one_record_per_job(&journal, 3, "real SIGKILL");
    let text = std::fs::read_to_string(&journal).expect("journal readable");
    assert!(
        text.lines().any(|l| {
            json::parse(l).ok().is_some_and(|v| {
                v.get("kind").and_then(Value::as_str) == Some("expire")
                    && v.get("pid").and_then(Value::as_u64) == Some(victim)
            })
        }),
        "the SIGKILLed worker's lease must have been expired after the reap:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
