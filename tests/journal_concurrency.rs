//! Journal append safety under concurrent writers.
//!
//! The multi-process backend has a dispatcher and N worker processes
//! all appending to one journal file. Two guarantees under test:
//!
//! * **No intra-record interleaving.** Every record is written as one
//!   `write(2)` of a whole newline-terminated line to an `O_APPEND`
//!   descriptor, so concurrent appenders interleave records, never
//!   bytes within a record: every line in the final journal parses.
//! * **Compaction keeps a competing writer's valid tail.** When a
//!   resume scan quarantines garbage, valid job records appearing
//!   *after* the garbage (another process's appends landed beyond the
//!   corruption) must survive the rewrite, not be truncated with it.

use std::process::Command;

use vbench::engine::{Engine, RateMode, TranscodeRequest};
use vbench::farm::EngineJob;
use vbench::resilience::ResilienceConfig;
use vbench::suite::{Suite, SuiteOptions};
use vbench::{run_batch_journaled, JournalConfig};
use vcodec::{CodecFamily, Preset};
use vtrace::json::{self, Value};

const EXE: &str = env!("CARGO_BIN_EXE_vbench");

fn temp_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("vbench-jconc-{}-{tag}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn jobs(n: usize) -> Vec<EngineJob> {
    let suite = Suite::vbench(&SuiteOptions::tiny());
    suite
        .iter()
        .take(n)
        .map(|v| {
            EngineJob::new(
                v.name,
                v.generate(),
                TranscodeRequest::software(
                    CodecFamily::Avc,
                    Preset::Fast,
                    RateMode::ConstQuality { crf: 30.0 },
                ),
            )
        })
        .collect()
}

/// Drives real concurrent appenders — a dispatcher plus two worker
/// processes, all writing leases, heartbeats, expires, and fsync'd job
/// records into one file — then asserts no record was torn by another
/// writer: every single line parses, and every parsed kind is one the
/// journal knows.
#[test]
fn concurrent_process_appends_never_interleave_within_a_record() {
    let journal = temp_path("interleave");
    let journal_str = journal.to_str().expect("utf8 path").to_string();
    let out = Command::new(EXE)
        .args(["dispatch", "--videos", "desktop,cat,girl,bike,holi"])
        .args(["--journal", &journal_str, "--procs", "2", "--workers", "2"])
        .output()
        .expect("run dispatch");
    assert!(out.status.success(), "dispatch failed: {out:?}");

    let text = std::fs::read_to_string(&journal).expect("journal readable");
    let mut job_records = 0;
    for line in text.lines() {
        let parsed = json::parse(line)
            .unwrap_or_else(|e| panic!("interleaved/torn journal line {line:?}: {e}"));
        let kind = parsed.get("kind").and_then(Value::as_str).expect("record kind");
        assert!(
            matches!(kind, "manifest" | "run" | "job" | "lease" | "expire" | "hb"),
            "unknown record kind {kind:?} in {line:?}"
        );
        job_records += usize::from(kind == "job");
    }
    assert_eq!(job_records, 5, "one durable record per job");
    let _ = std::fs::remove_file(&journal);
}

/// Splices garbage *between* valid job records — modelling one writer's
/// torn line landing before a competing writer's later, valid appends —
/// and proves the resume scan quarantines only the garbage: the valid
/// tail replays, and the compacted journal retains it.
#[test]
fn compaction_keeps_a_competing_writers_valid_tail() {
    let journal = temp_path("tail");
    let jobs = jobs(3);
    let policy = ResilienceConfig::default();
    run_batch_journaled(&Engine, &jobs, 2, &policy, &JournalConfig::new(&journal))
        .expect("fresh run");

    // Rebuild the file with garbage after the FIRST job record: the
    // remaining records form the competing writer's valid tail.
    let text = std::fs::read_to_string(&journal).expect("journal readable");
    let mut rebuilt = String::new();
    let mut jobs_seen = 0;
    for line in text.lines() {
        rebuilt.push_str(line);
        rebuilt.push('\n');
        if line.contains("\"kind\":\"job\"") {
            jobs_seen += 1;
            if jobs_seen == 1 {
                rebuilt.push_str("{\"kind\":\"job\",\"job\":9,\"torn mid-app");
                rebuilt.push('\n');
            }
        }
    }
    assert_eq!(jobs_seen, 3, "expected three job records in the fresh journal");
    std::fs::write(&journal, &rebuilt).expect("splice garbage");

    let resumed = run_batch_journaled(
        &Engine,
        &jobs,
        2,
        &policy,
        &JournalConfig::new(&journal).with_resume(true),
    )
    .expect("resume survives spliced garbage");
    assert_eq!(
        resumed.summary.replayed, 3,
        "every valid record replays — including the two beyond the garbage"
    );

    // The compaction that resume performed must have kept the tail
    // records and scrubbed the garbage.
    let compacted = std::fs::read_to_string(&journal).expect("compacted journal");
    let kept = compacted.lines().filter(|l| l.contains("\"kind\":\"job\"")).count();
    assert_eq!(kept, 3, "compaction dropped a competing writer's valid records");
    assert!(!compacted.contains("torn mid-app"), "garbage survived compaction");
    let _ = std::fs::remove_file(&journal);
}

/// Ephemeral coordination records (lease / expire / heartbeat) left by
/// a multi-process run are not corruption: a resume replays every job,
/// reports zero quarantined lines, and compaction scrubs the ephemera.
#[test]
fn stale_coordination_records_are_scrubbed_not_quarantined() {
    let journal = temp_path("ephemeral");
    let jobs = jobs(2);
    let policy = ResilienceConfig::default();
    run_batch_journaled(&Engine, &jobs, 2, &policy, &JournalConfig::new(&journal))
        .expect("fresh run");

    // Simulate a dead dispatcher's leftovers: stale leases and
    // heartbeats appended after the batch finished.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&journal).expect("open journal");
        f.write_all(b"{\"kind\":\"lease\",\"job\":0,\"worker\":7,\"nonce\":3,\"pid\":12345}\n")
            .expect("append lease");
        f.write_all(b"{\"kind\":\"hb\",\"worker\":7,\"seq\":42}\n").expect("append hb");
    }

    let resumed = run_batch_journaled(
        &Engine,
        &jobs,
        2,
        &policy,
        &JournalConfig::new(&journal).with_resume(true),
    )
    .expect("resume over stale coordination records");
    assert_eq!(resumed.summary.replayed, 2, "ephemera must not block replay");

    let compacted = std::fs::read_to_string(&journal).expect("compacted journal");
    assert!(
        !compacted.contains("\"kind\":\"lease\"") && !compacted.contains("\"kind\":\"hb\""),
        "stale coordination records must be scrubbed on resume:\n{compacted}"
    );
    let _ = std::fs::remove_file(&journal);
}
