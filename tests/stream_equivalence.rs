//! The streaming pipeline's contract: pulling frames one at a time
//! through a bounded window is *observationally identical* to handing the
//! encoder a materialized clip — same bitstream bytes, same bitrate, same
//! quality, same bisected operating point — while the number of frames
//! simultaneously resident stays bounded by the window no matter how long
//! the clip is. These tests pin that equivalence across every software
//! family and rate mode, through the engine and through the farm.

use proptest::prelude::*;
use vbench::engine::{transcode, transcode_stream, Engine, RateMode, TranscodeRequest};
use vbench::farm::{transcode_batch_with, EngineJob, JobSource};
use vcodec::CodecFamily;
use vcodec::Preset;
use vframe::color::{frame_from_fn, Yuv};
use vframe::source::VideoSource;
use vframe::{Resolution, Video};
use vsynth::{ContentClass, SourceSpec};

fn clip(frames: usize) -> Video {
    let res = Resolution::new(96, 64);
    let fs = (0..frames)
        .map(|t| {
            frame_from_fn(res, |x, y| {
                Yuv::new(((x * 3 + y * 2 + 7 * t as u32) % 256) as u8, 128, 128)
            })
        })
        .collect();
    Video::new(fs, 30.0)
}

/// Runs `req` both ways over the same content and asserts every
/// deterministic field agrees (software speed is wall clock, so it is
/// the one excluded axis).
fn assert_stream_matches_full(v: &Video, req: &TranscodeRequest, label: &str) {
    let full = transcode(v, req).expect("in-memory transcode");
    let mut src = VideoSource::new(v);
    let streamed = transcode_stream(&mut src, req).expect("streaming transcode");
    assert_eq!(streamed.bytes, full.output.bytes, "{label}: bitstream");
    assert_eq!(streamed.chosen_bps, full.chosen_bps, "{label}: operating point");
    assert_eq!(
        streamed.measurement.bitrate_bpps, full.measurement.bitrate_bpps,
        "{label}: bitrate"
    );
    assert_eq!(streamed.measurement.quality_db, full.measurement.quality_db, "{label}: quality");
    assert_eq!(streamed.stats.frames, full.output.stats.frames, "{label}: frame count");
}

#[test]
fn software_matrix_streams_byte_identically() {
    let v = clip(8);
    let rates = [
        RateMode::ConstQuality { crf: 28.0 },
        RateMode::Bitrate { bps: 600_000 },
        RateMode::TwoPassBitrate { bps: 600_000 },
    ];
    for family in [CodecFamily::Avc, CodecFamily::Hevc, CodecFamily::Vp9] {
        for rate in rates {
            for bframes in [false, true] {
                let mut req = TranscodeRequest::software(family, Preset::Fast, rate).with_gop(4);
                if bframes {
                    req = req.with_bframes();
                }
                assert_stream_matches_full(&v, &req, &format!("{family} {rate:?} b={bframes}"));
            }
        }
    }
}

#[test]
fn quality_target_bisection_streams_to_the_same_operating_point() {
    // The bisection re-pulls the source once per probe; every probe's
    // quality readout must match the in-memory probe's bit for bit, so
    // the search settles on the same bitrate and the same final bytes.
    let v = clip(6);
    for family in [CodecFamily::Avc, CodecFamily::Hevc] {
        for bframes in [false, true] {
            let mut req = TranscodeRequest::software(
                family,
                Preset::Fast,
                RateMode::QualityTarget {
                    target_db: 33.0,
                    lo_bps: 50_000,
                    hi_bps: 4_000_000,
                    fallback_bps: Some(500_000),
                },
            );
            if bframes {
                req = req.with_bframes();
            }
            assert_stream_matches_full(&v, &req, &format!("{family} target b={bframes}"));
        }
    }
}

#[test]
fn peak_residency_is_bounded_by_the_window_not_the_clip() {
    // Same request over clips 4x apart in length: the bitstreams differ,
    // but the peak number of resident frames is identical and within the
    // structural window — the whole point of the streaming path.
    for bframes in [false, true] {
        let mut peaks = Vec::new();
        for frames in [16usize, 64] {
            let v = clip(frames);
            let mut req = TranscodeRequest::software(
                CodecFamily::Avc,
                Preset::Fast,
                RateMode::TwoPassBitrate { bps: 500_000 },
            )
            .with_gop(6);
            let mut cfg = vcodec::EncoderConfig::new(
                CodecFamily::Avc,
                Preset::Fast,
                vcodec::RateControl::TwoPassBitrate { bps: 500_000 },
            )
            .with_gop(6);
            if bframes {
                req = req.with_bframes();
                cfg = cfg.with_bframes();
            }
            let window = vcodec::required_window(&cfg);
            let mut src = VideoSource::new(&v);
            let out =
                transcode_stream(&mut src, &req.with_window(window)).expect("streaming transcode");
            assert!(
                out.peak_resident_frames <= window,
                "peak {} exceeds window {window} for {frames}-frame clip (b={bframes})",
                out.peak_resident_frames
            );
            assert!(out.peak_resident_frames < frames, "streaming must beat materializing");
            peaks.push(out.peak_resident_frames);
        }
        assert_eq!(peaks[0], peaks[1], "peak residency must not grow with clip length");
    }
}

#[test]
fn streamed_farm_batch_matches_in_memory_batch() {
    // The same content submitted twice: once as materialized in-memory
    // jobs, once as streaming synthetic sources. Every deterministic
    // field must agree job for job, and the streamed batch must report a
    // bounded peak residency.
    let specs: Vec<SourceSpec> = (0..3)
        .map(|i| {
            SourceSpec::new(Resolution::new(96, 64), 30.0, 12, ContentClass::Animation, 40 + i)
        })
        .collect();
    let request = TranscodeRequest::software(
        CodecFamily::Avc,
        Preset::Fast,
        RateMode::TwoPassBitrate { bps: 500_000 },
    );
    let in_memory: Vec<EngineJob> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| EngineJob::new(format!("j{i}"), s.generate(), request))
        .collect();
    let streamed: Vec<EngineJob> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| EngineJob::streaming(format!("j{i}"), JobSource::Synth(s.clone()), request))
        .collect();
    let full = transcode_batch_with(&Engine, &in_memory, 2).expect("in-memory batch");
    let lazy = transcode_batch_with(&Engine, &streamed, 2).expect("streamed batch");
    for (f, l) in full.results.iter().zip(&lazy.results) {
        assert_eq!(f.name, l.name);
        let fo = f.success().expect("in-memory job succeeds");
        let lo = l.success().expect("streamed job succeeds");
        assert_eq!(fo.bytes(), lo.bytes(), "{}", f.name);
        assert_eq!(fo.measurement().bitrate_bpps, lo.measurement().bitrate_bpps, "{}", f.name);
        assert_eq!(fo.measurement().quality_db, lo.measurement().quality_db, "{}", f.name);
        let peak = lo.peak_resident_frames().expect("streamed jobs report residency");
        assert!(peak < 12, "peak {peak} should be far below the 12-frame clip");
    }
    assert_eq!(full.summary.peak_resident_frames, 0, "in-memory batches report no residency");
    let peak = lazy.summary.peak_resident_frames;
    assert!(peak > 0 && peak < 12, "batch peak {peak} must be bounded");
}

// Satellite property: *any* valid software request streams to the same
// bytes and the same measurement as the in-memory path. Cases are kept
// small (tiny frames, short clips) so the whole set runs in debug mode.
proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn any_software_request_streams_identically(
        seed in any::<u32>(),
        family_idx in 0usize..CodecFamily::ALL.len(),
        mode in 0usize..3,
        bframes in any::<bool>(),
        gop in 2u32..8,
        frames in 4usize..9,
    ) {
        let res = Resolution::new(48, 32);
        let fs = (0..frames)
            .map(|t| {
                frame_from_fn(res, |x, y| {
                    let v = (x.wrapping_mul(seed % 97 + 3)
                        + y.wrapping_mul(seed % 31 + 1)
                        + t as u32 * (seed % 13)) % 256;
                    Yuv::new(v as u8, 128, 128)
                })
            })
            .collect();
        let v = Video::new(fs, 30.0);
        let rate = match mode {
            0 => RateMode::ConstQuality { crf: 24.0 + f64::from(seed % 16) },
            1 => RateMode::Bitrate { bps: 200_000 + u64::from(seed % 7) * 100_000 },
            _ => RateMode::TwoPassBitrate { bps: 200_000 + u64::from(seed % 7) * 100_000 },
        };
        let mut req =
            TranscodeRequest::software(CodecFamily::ALL[family_idx], Preset::Fast, rate)
                .with_gop(gop);
        if bframes {
            req = req.with_bframes();
        }
        let full = transcode(&v, &req).expect("in-memory transcode");
        let mut src = VideoSource::new(&v);
        let streamed = transcode_stream(&mut src, &req).expect("streaming transcode");
        prop_assert_eq!(&streamed.bytes, &full.output.bytes);
        prop_assert_eq!(streamed.measurement.bitrate_bpps, full.measurement.bitrate_bpps);
        prop_assert_eq!(streamed.measurement.quality_db, full.measurement.quality_db);
        prop_assert!(streamed.peak_resident_frames <= vcodec::required_window(
            &req_config_for_window(&req)
        ));
    }
}

/// The encoder configuration whose structural window bounds `req`'s
/// streaming residency (rate control never widens the window, so the
/// probe configuration suffices).
fn req_config_for_window(req: &TranscodeRequest) -> vcodec::EncoderConfig {
    let mut cfg = vcodec::EncoderConfig::new(
        CodecFamily::Avc,
        Preset::Fast,
        vcodec::RateControl::ConstQuality { crf: 30.0 },
    )
    .with_gop(req.gop);
    if req.bframes {
        cfg = cfg.with_bframes();
    }
    cfg
}
