//! Service-level integration: the full Figure-3 pipeline across crates —
//! upload → ladder fan-out (parallel) → packaging → integrity-checked
//! serving — on debug-friendly clip sizes.

use vbench::farm::{transcode_batch, TranscodeJob};
use vbench::ladder::transcode_ladder;
use vbench::suite::{Suite, SuiteOptions};
use vcodec::{CodecFamily, EncoderConfig, Preset, RateControl};

#[test]
fn ladder_fanout_rungs_are_decodable_and_ordered() {
    let suite = Suite::vbench(&SuiteOptions::tiny());
    let video = suite.by_name("funny").unwrap().generate();
    let rungs = transcode_ladder(&video, CodecFamily::Avc, Preset::Fast, 8, 4);
    assert!(rungs.len() >= 2, "a 1080p-class source covers multiple rungs");
    let mut last = u64::MAX;
    for r in &rungs {
        assert!(r.rung.resolution.pixels() < last);
        last = r.rung.resolution.pixels();
        let decoded = vcodec::decode(&r.output.bytes).expect("rung decodes");
        assert_eq!(decoded.resolution(), r.rung.resolution);
    }
}

#[test]
fn ladder_rungs_survive_packaging() {
    let suite = Suite::vbench(&SuiteOptions::tiny());
    let video = suite.by_name("bike").unwrap().generate();
    let rungs = transcode_ladder(&video, CodecFamily::Avc, Preset::Fast, 8, 2);
    for r in &rungs {
        let segments = vpack::segment_at_keyframes(&r.output.bytes).expect("segmentable");
        let whole = vpack::concatenate(&segments).expect("reassemblable");
        let a = vcodec::decode(&r.output.bytes).unwrap();
        let b = vcodec::decode(&whole).unwrap();
        for t in 0..a.len() {
            assert_eq!(a.frame(t), b.frame(t), "{} frame {t}", r.rung.name);
        }
    }
}

#[test]
fn parallel_batch_of_suite_videos_is_deterministic() {
    let suite = Suite::vbench(&SuiteOptions::tiny());
    let jobs: Vec<TranscodeJob> = ["desktop", "cricket", "cat"]
        .iter()
        .map(|name| {
            let v = suite.by_name(name).unwrap();
            TranscodeJob {
                name: name.to_string(),
                video: v.generate(),
                config: EncoderConfig::new(
                    CodecFamily::Avc,
                    Preset::Fast,
                    RateControl::ConstQuality { crf: 30.0 },
                ),
            }
        })
        .collect();
    let a = transcode_batch(&jobs, 3).expect("parallel batch");
    let b = transcode_batch(&jobs, 1).expect("serial batch");
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.output.bytes, y.output.bytes, "{}", x.name);
    }
    assert!(a.aggregate_pps > 0.0);
}

#[test]
fn bframe_streams_pass_through_the_whole_pipeline() {
    let suite = Suite::vbench(&SuiteOptions::tiny());
    let video = suite.by_name("girl").unwrap().generate();
    let cfg = EncoderConfig::new(
        CodecFamily::Hevc,
        Preset::Medium,
        RateControl::ConstQuality { crf: 30.0 },
    )
    .with_gop(6)
    .with_bframes();
    let out = vcodec::encode(&video, &cfg);
    // Inspect, segment, reassemble, decode — all layers B-frame aware.
    let info = vcodec::probe_stream(&out.bytes).unwrap();
    assert_eq!(info.frames as usize, video.len());
    let kinds = vcodec::frame_kinds(&out.bytes).unwrap();
    assert!(kinds[0], "stream starts with a keyframe");
    let segments = vpack::segment_at_keyframes(&out.bytes).unwrap();
    let whole = vpack::concatenate(&segments).unwrap();
    let decoded = vcodec::decode(&whole).unwrap();
    for t in 0..video.len() {
        assert_eq!(decoded.frame(t), out.recon.frame(t), "frame {t}");
    }
}

#[test]
fn fleet_model_agrees_with_measured_worker_speed() {
    // Wire the queueing model to a real measured encode speed: at the
    // sized fleet, simulated utilization must sit near the target.
    let suite = Suite::vbench(&SuiteOptions::tiny());
    let video = suite.by_name("desktop").unwrap().generate();
    let cfg =
        EncoderConfig::new(CodecFamily::Avc, Preset::Fast, RateControl::ConstQuality { crf: 30.0 });
    let out = vcodec::encode(&video, &cfg);
    let worker_pps = out.stats.pixels_per_second(video.total_pixels());
    let offered = worker_pps * 3.0; // needs ~3 busy workers
    let workers = vbench::fleet::fleet_size_for(offered, worker_pps, 0.75);
    let report = vbench::fleet::simulate_fleet(
        &vbench::fleet::FleetConfig { workers, worker_speed_pps: worker_pps },
        &vbench::fleet::UploadWorkload {
            arrivals_per_sec: offered / video.total_pixels() as f64,
            mean_pixels: video.total_pixels() as f64,
            sigma: 0.3,
        },
        2_000.0,
        5,
    );
    assert!(
        (report.utilization - 0.75).abs() < 0.15,
        "sized for 75%, simulated {}",
        report.utilization
    );
}
