//! Cross-crate integration: synthesis → encode → decode → metrics.
//!
//! These tests run the full stack the way the benchmark does, on
//! debug-friendly clip sizes.

use vbench::suite::{Suite, SuiteOptions};
use vcodec::{decode, encode, CodecFamily, EncoderConfig, Preset, RateControl};
use vframe::metrics::{psnr_video, ssim_luma};
use vframe::Resolution;
use vsynth::{ContentClass, SourceSpec};

fn small_clip(class: ContentClass, frames: usize) -> vframe::Video {
    SourceSpec::new(Resolution::new(96, 64), 30.0, frames, class, 7).generate()
}

#[test]
fn synthetic_content_encodes_and_decodes_across_families() {
    let video = small_clip(ContentClass::Animation, 6);
    for family in CodecFamily::ALL {
        let cfg = EncoderConfig::new(family, Preset::Fast, RateControl::ConstQuality { crf: 26.0 });
        let out = encode(&video, &cfg);
        let decoded = decode(&out.bytes).expect("stream decodes");
        assert_eq!(decoded.len(), video.len());
        for t in 0..video.len() {
            assert_eq!(decoded.frame(t), out.recon.frame(t), "{family} frame {t}");
        }
        let q = psnr_video(&video, &decoded);
        assert!(q > 26.0, "{family}: PSNR {q}");
    }
}

#[test]
fn crf_ladder_is_monotone_in_quality_and_bitrate() {
    let video = small_clip(ContentClass::Natural, 5);
    let mut last_quality = f64::INFINITY;
    let mut last_bytes = usize::MAX;
    for crf in [16.0, 26.0, 36.0, 46.0] {
        let cfg =
            EncoderConfig::new(CodecFamily::Avc, Preset::Fast, RateControl::ConstQuality { crf });
        let out = encode(&video, &cfg);
        let q = psnr_video(&video, &out.recon);
        assert!(q < last_quality, "CRF {crf}: quality should fall ({q} vs {last_quality})");
        assert!(
            out.bytes.len() < last_bytes,
            "CRF {crf}: size should fall ({} vs {last_bytes})",
            out.bytes.len()
        );
        last_quality = q;
        last_bytes = out.bytes.len();
    }
}

#[test]
fn newer_families_compress_better_at_equal_quality_targets() {
    // Figure 2's structural claim: at the same CRF, HEVC/VP9-class
    // encoders produce smaller streams at comparable quality.
    let video = small_clip(ContentClass::Gaming, 6);
    let run = |family| {
        let cfg =
            EncoderConfig::new(family, Preset::Medium, RateControl::ConstQuality { crf: 30.0 });
        let out = encode(&video, &cfg);
        (out.bytes.len() as f64, psnr_video(&video, &out.recon))
    };
    let (avc_bytes, avc_q) = run(CodecFamily::Avc);
    let (vp9_bytes, vp9_q) = run(CodecFamily::Vp9);
    assert!(vp9_bytes < avc_bytes, "vp9-class ({vp9_bytes}) should beat avc-class ({avc_bytes})");
    assert!(vp9_q > avc_q - 1.0, "quality roughly maintained: {vp9_q} vs {avc_q}");
}

#[test]
fn effort_ladder_buys_compression_with_work() {
    let video = small_clip(ContentClass::Sports, 5);
    let run = |preset| {
        let cfg =
            EncoderConfig::new(CodecFamily::Avc, preset, RateControl::ConstQuality { crf: 30.0 });
        let out = encode(&video, &cfg);
        (out.stats.kernels.total_samples(), out.bytes.len())
    };
    let (work_uf, bytes_uf) = run(Preset::UltraFast);
    let (work_vs, bytes_vs) = run(Preset::VerySlow);
    assert!(work_vs > work_uf * 2, "effort must cost work: {work_vs} vs {work_uf}");
    assert!(
        bytes_vs as f64 <= bytes_uf as f64 * 1.05,
        "effort should not hurt compression: {bytes_vs} vs {bytes_uf}"
    );
}

#[test]
fn av1_class_does_the_most_work_per_frame() {
    // The next-generation family the paper anticipates: widest search of
    // the ladder, hence the most computation at a fixed preset.
    let video = small_clip(ContentClass::Gaming, 4);
    let work = |family| {
        let cfg =
            EncoderConfig::new(family, Preset::Medium, RateControl::ConstQuality { crf: 30.0 });
        encode(&video, &cfg).stats.kernels.total_samples()
    };
    let vp9 = work(CodecFamily::Vp9);
    let av1 = work(CodecFamily::Av1);
    assert!(av1 > vp9, "av1-class must out-search vp9-class: {av1} vs {vp9}");
}

#[test]
fn two_pass_tracks_bitrate_target_more_tightly() {
    let video = small_clip(ContentClass::Natural, 10);
    let target = 600_000u64;
    let err = |rate| {
        let cfg = EncoderConfig::new(CodecFamily::Avc, Preset::Fast, rate);
        let out = encode(&video, &cfg);
        let got = out.bitrate_bps(video.duration_secs());
        (got / target as f64).ln().abs()
    };
    let single = err(RateControl::Bitrate { bps: target });
    let two = err(RateControl::TwoPassBitrate { bps: target });
    assert!(
        two <= single + 0.35,
        "two-pass should not be much worse at hitting rate: {two} vs {single}"
    );
}

#[test]
fn measured_entropy_orders_suite_content() {
    // The suite's calibrated generators must order by published entropy:
    // desktop (0.2) < cricket (3.4) < hall (7.7) in measured bits/pix/s.
    let suite = Suite::vbench(&SuiteOptions::tiny());
    let entropy = |name: &str| {
        let video = suite.by_name(name).expect("table 2 video").generate();
        vbench::reference::measure_entropy(&video)
    };
    let desktop = entropy("desktop");
    let cricket = entropy("cricket");
    let hall = entropy("hall");
    assert!(
        desktop < cricket && cricket < hall,
        "entropy ordering violated: desktop {desktop}, cricket {cricket}, hall {hall}"
    );
}

#[test]
fn hardware_model_streams_are_standard_streams() {
    let video = small_clip(ContentClass::Natural, 5);
    for vendor in vhw::HwVendor::ALL {
        let hw = vhw::HwEncoder::new(vendor);
        let out = hw.encode_bitrate(&video, 400_000);
        let decoded = decode(&out.output.bytes).expect("hardware stream decodes");
        assert_eq!(decoded.frame(1), out.output.recon.frame(1), "{vendor}");
    }
}

#[test]
fn ssim_and_psnr_agree_on_ordering() {
    let video = small_clip(ContentClass::Animation, 3);
    let encode_at = |crf| {
        let cfg =
            EncoderConfig::new(CodecFamily::Avc, Preset::Fast, RateControl::ConstQuality { crf });
        encode(&video, &cfg)
    };
    let good = encode_at(18.0);
    let bad = encode_at(45.0);
    let ssim_good = ssim_luma(video.frame(1).y(), good.recon.frame(1).y());
    let ssim_bad = ssim_luma(video.frame(1).y(), bad.recon.frame(1).y());
    assert!(ssim_good > ssim_bad, "SSIM ordering: {ssim_good} vs {ssim_bad}");
}
